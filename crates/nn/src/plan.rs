//! Mask-compiled execution plans: per-profile weight pre-packing and a
//! batched serving path.
//!
//! The hot path of CAP'NN at scale is *re-running the same prune mask
//! thousands of times* — one personalized mask serves a user's whole
//! request stream. The masked engine ([`crate::exec`]) skips pruned
//! compute but still pays per-call gather overhead: kept-index bookkeeping,
//! weight-row gathering and full-size output scatters on every forward.
//! A [`CompiledPlan`] moves all of that to *compile time*:
//!
//! * kept-index lists are resolved once, per layer;
//! * kept weights are re-packed into contiguous buffers — dense rows/cols
//!   dropped (and stored input-major for the vectorizable i-k-j kernel),
//!   pruned conv channels dropped from the im2col layout;
//! * the layer geometry (planes, unfold sizes) is frozen, so per-inference
//!   cost is pure dense GEMM on small packed matrices with zero masking
//!   logic.
//!
//! On top of the single-sample path, [`CompiledPlan::forward_batch`]
//! serves whole batches: activations travel in channel-major batched
//! layout (`(c·B + b)·plane + p`) so each conv layer unfolds all samples
//! into one wide im2col matrix (the unfold itself row-partitioned across
//! [`capnn_tensor::parallel`]) and runs a *single* panel-packed GEMM
//! ([`capnn_tensor::conv_gemm_into`]) with the bias — and, when the next
//! layer is a ReLU, the activation — fused into the kernel epilogue,
//! while the batched dense kernels reuse each streamed weight row across
//! a tile of samples.
//! Sample outputs are value-identical (`==` on every element, differing
//! at most in the sign of exact zeros) to [`CompiledPlan::forward`] for
//! any batch size and thread count: every output element accumulates bias
//! first, then inputs in ascending index order — the same discipline as
//! `Dense::forward` and the masked engine — so plans are also
//! argmax-bit-compatible with `Network::forward_masked_reference`.
//!
//! Degenerate masks are supported: a layer with *all* units pruned
//! compiles to a 0-row packed matrix (downstream sees zeros, a following
//! dense layer sees only its bias), exactly matching the reference
//! semantics — a capability `Network::compact` lacks.

use crate::error::NnError;
use crate::layer::Layer;
use crate::mask::PruneMask;
use crate::network::Network;
use capnn_tensor::{
    conv_gemm_i8_into, conv_gemm_i8w_into, conv_gemm_into, conv_nm_gemm_i8_into, conv_nm_gemm_into,
    dense_batch_chw_into, dense_batch_i8_chw_into, dense_batch_i8_into, dense_batch_into,
    dense_nm_batch_chw_into, dense_nm_batch_i8_chw_into, dense_nm_batch_i8_into,
    dense_nm_batch_into, i8_inv_scale, i8_scale, im2col_batch_into, max_abs, nm_nnz,
    pack_conv_panels, pack_dense_panels, parallel, quantize_conv_panels_i8,
    quantize_dense_panels_i8, quantize_i8, quantize_nm_conv_i8, quantize_nm_dense_i8,
    select_nm_conv, select_nm_dense, widen_i8_cols_pairs, Conv2dSpec, PoolSpec, Tensor,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

/// Numeric precision of a compiled plan's packed weights and GEMM kernels.
///
/// [`Precision::Int8`] plans quantize their packed weight panels once at
/// compile time (symmetric int8, one scale per output channel/column) and
/// quantize activations dynamically per sample before each conv/dense
/// step. Accumulation is exact `i32`; the f32 epilogue dequantizes, adds
/// the (f32) bias and applies any fused ReLU. Non-GEMM steps (pooling,
/// standalone ReLU) run in f32 either way, so only the multiply-heavy
/// kernels trade precision for bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// f32 weights and kernels — the bit-exact default.
    #[default]
    F32,
    /// Symmetric int8 weights + per-sample int8 activations with i32
    /// accumulation; outputs dequantize to f32 between steps.
    Int8,
}

impl Precision {
    /// Stable lowercase name, used in telemetry probe names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Weight-sparsity tier of a compiled plan's GEMM kernels.
///
/// [`Sparsity::NM`] plans keep only the `n` largest-magnitude weights out
/// of every `m` consecutive reduction positions *within* the class-aware
/// kept rows/columns, compressing them to value + index panels at compile
/// time (see `capnn_tensor::select_nm_conv`/`select_nm_dense`). The
/// hybrid tier composes with both precisions: int8 N:M plans quantize the
/// compressed values, not the dense panels. Non-GEMM steps are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sparsity {
    /// Dense packed panels — the bit-exact default.
    #[default]
    Dense,
    /// Keep the `n` largest of every `m` reduction weights (e.g. 2:4).
    NM(u8, u8),
}

impl Sparsity {
    /// Stable lowercase name, used in telemetry probe names, plan-cache
    /// keys and reports (`"dense"`, `"nm2_4"`, ...).
    pub fn name(self) -> String {
        match self {
            Sparsity::Dense => "dense".to_string(),
            Sparsity::NM(n, m) => format!("nm{n}_{m}"),
        }
    }

    /// Rejects degenerate patterns (`N:M` requires `0 < n < m`).
    pub fn validate(self) -> Result<(), NnError> {
        match self {
            Sparsity::Dense => Ok(()),
            Sparsity::NM(n, m) if n > 0 && n < m => Ok(()),
            Sparsity::NM(n, m) => Err(NnError::Config(format!(
                "invalid N:M sparsity {n}:{m} (requires 0 < N < M)"
            ))),
        }
    }

    /// Kept weights per reduction line of length `k` under this tier.
    fn nnz(self, k: usize) -> usize {
        match self {
            Sparsity::Dense => k,
            Sparsity::NM(n, m) => nm_nnz(k, n as usize, m as usize),
        }
    }
}

/// Int8 twin of a step's packed weight panels: the same register-tile
/// layout as the f32 buffer, quantized with one scale per output
/// channel (conv) or output column (dense).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantPanels {
    data: Vec<i8>,
    scales: Vec<f32>,
}

/// N:M-compressed twin of a GEMM step's weights: kept values plus their
/// reduction indices (conv: `[out_c][nnz]` rows; dense: per-column-panel
/// shared patterns, values `[tile][kk][JT]`). When a kernel carries one
/// of these its dense `panels` buffer is empty and the int8 twin (if
/// any) lives here, quantized over the compressed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NmPanels {
    values: Vec<f32>,
    idx: Vec<u32>,
    /// Kept weights per reduction line (shared by every row/panel).
    nnz: usize,
    n: u8,
    m: u8,
    /// Uncompressed kept-weight count, for density accounting.
    dense_len: usize,
    quant: Option<QuantPanels>,
}

/// One GEMM step's immutable packed weights: the register-tiled f32
/// panels, the bias, and (for [`Precision::Int8`] plans) the quantized
/// twin. Kernels are shared across plans via `Arc` — two plans whose
/// layers keep the same units reference one allocation — so everything
/// that varies per plan (fused ReLU, frozen geometry) lives on the step,
/// not here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Kernel {
    panels: Tensor,
    bias: Tensor,
    quant: Option<QuantPanels>,
    /// N:M-compressed twin; `Some` means `panels` is empty and `quant`
    /// is `None` (an int8 twin lives inside, over compressed values).
    nm: Option<NmPanels>,
}

impl Kernel {
    /// Heap bytes owned by this kernel's packed buffers (panels, bias,
    /// int8/N:M twins), excluding the fixed struct size.
    fn heap_bytes(&self) -> usize {
        let f32s = (self.panels.len() + self.bias.len()) * std::mem::size_of::<f32>();
        let quant_bytes =
            |q: &QuantPanels| q.data.len() + q.scales.len() * std::mem::size_of::<f32>();
        let quant = self.quant.as_ref().map_or(0, quant_bytes);
        let nm = self.nm.as_ref().map_or(0, |nm| {
            nm.values.len() * std::mem::size_of::<f32>()
                + nm.idx.len() * std::mem::size_of::<u32>()
                + nm.quant.as_ref().map_or(0, quant_bytes)
        });
        f32s + quant + nm
    }

    /// True when any of this kernel's weight twins is int8 (dense panels
    /// or the N:M-compressed values).
    fn is_int8(&self) -> bool {
        self.quant.is_some() || self.nm.as_ref().is_some_and(|nm| nm.quant.is_some())
    }
}

/// Identity of a shareable [`Kernel`] within one network: the layer it
/// was packed from, the precision, the sparsity tier and the exact kept
/// unit ids on both sides. Keys store the id vectors themselves (not a
/// hash of them), so a pool can never serve the wrong panels on a hash
/// collision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PanelKey {
    layer: usize,
    precision: Precision,
    sparsity: Sparsity,
    kept_in: Vec<usize>,
    kept_out: Vec<usize>,
}

/// Dead-`Weak` purge cadence of a [`PanelPool`] (every N inserts).
const POOL_PURGE_EVERY: u32 = 256;

/// Ceiling (bytes) on the pair-interleaved i16 im2col matrix below which
/// the int8 conv path pre-widens the whole batch
/// ([`capnn_tensor::widen_i8_cols_pairs`] + the `i8w` kernel). The
/// widened matrix is 2× the compact i8 one; past L1-resident sizes that
/// extra streaming traffic costs more than the per-panel unpack it saves
/// (measured on the vgg_tiny batch sweep), so larger batches keep the
/// unpack inside the kernel. Both kernels are bitwise identical, so the
/// switch is invisible to results.
const I8_WIDEN_MAX_BYTES: usize = 16 * 1024;

/// Interning pool for packed weight panels, shared across the compiled
/// plans of **one network**: [`CompiledPlan::compile_shared`] looks every
/// conv/dense kernel up by its per-layer kept-set key and reuses the
/// existing `Arc<Kernel>` on a match, so plans whose layers coincide
/// reference one panel allocation instead of packing (and, for int8,
/// quantizing) their own.
///
/// The pool holds only `Weak` handles: it keeps nothing alive, so a
/// byte-budgeted plan cache's evictions actually free panel memory, and
/// [`CompiledPlan::resident_bytes`] accounting stays driven by the plans
/// themselves. Dead entries are purged opportunistically.
///
/// Keys do not include a network fingerprint — callers must not share one
/// pool across different networks (the engine and the cloud server each
/// own a pool next to their network).
#[derive(Debug, Default)]
pub struct PanelPool {
    slots: Mutex<(HashMap<PanelKey, Weak<Kernel>>, u32)>,
}

impl PanelPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (upgradeable) kernels currently interned.
    pub fn live_kernels(&self) -> usize {
        let slots = self.slots.lock().expect("panel pool poisoned");
        slots.0.values().filter(|w| w.strong_count() > 0).count()
    }

    /// Returns the interned kernel for `key`, building and interning it
    /// via `build` on a miss. The build runs under the pool lock, so two
    /// racing compiles of the same layer never pack twice.
    fn get_or_build(
        &self,
        key: PanelKey,
        build: impl FnOnce() -> Result<Kernel, NnError>,
    ) -> Result<Arc<Kernel>, NnError> {
        let mut slots = self.slots.lock().expect("panel pool poisoned");
        if let Some(kernel) = slots.0.get(&key).and_then(Weak::upgrade) {
            capnn_telemetry::count("plan.panels_shared", 1);
            return Ok(kernel);
        }
        let kernel = Arc::new(build()?);
        slots.0.insert(key, Arc::downgrade(&kernel));
        slots.1 += 1;
        if slots.1 >= POOL_PURGE_EVERY {
            slots.0.retain(|_, w| w.strong_count() > 0);
            slots.1 = 0;
        }
        Ok(kernel)
    }
}

/// Builds `key`'s kernel through `pool` when one is supplied, or fresh
/// (unshared) otherwise.
fn obtain_kernel(
    pool: Option<&PanelPool>,
    key: PanelKey,
    build: impl FnOnce() -> Result<Kernel, NnError>,
) -> Result<Arc<Kernel>, NnError> {
    match pool {
        Some(pool) => pool.get_or_build(key, build),
        None => build().map(Arc::new),
    }
}

/// Shape of the gathered kept-weight matrix handed to
/// [`build_gemm_kernel`].
enum GemmShape {
    /// Row-major `[out_c × krows]` conv weights (im2col reduction rows).
    Conv { out_c: usize, krows: usize },
    /// Input-major `[n_in × n_out]` transposed dense weights.
    Dense { n_in: usize, n_out: usize },
}

/// Packs one GEMM step's gathered kept weights into a [`Kernel`] — the
/// single pack/quantize entry shared by the conv and dense compile arms.
/// [`Sparsity::Dense`] register-tiles the full matrix (plus the int8
/// twin); [`Sparsity::NM`] compresses to magnitude-selected value+index
/// panels and quantizes those instead.
fn build_gemm_kernel(
    shape: GemmShape,
    weights: &[f32],
    bias: Tensor,
    precision: Precision,
    sparsity: Sparsity,
) -> Result<Kernel, NnError> {
    match sparsity {
        Sparsity::Dense => {
            let packed = match shape {
                GemmShape::Conv { out_c, krows } => {
                    let _pack = capnn_telemetry::time("plan.conv_pack_ns");
                    pack_conv_panels(weights, out_c, krows)
                }
                GemmShape::Dense { n_in, n_out } => pack_dense_panels(weights, n_in, n_out),
            };
            let plen = packed.len();
            let panels = Tensor::from_vec(packed, &[plen])?;
            let quant = (precision == Precision::Int8).then(|| {
                let _q = capnn_telemetry::time("plan.quantize_weights_ns");
                let (data, scales) = match shape {
                    GemmShape::Conv { out_c, krows } => {
                        quantize_conv_panels_i8(weights, out_c, krows)
                    }
                    GemmShape::Dense { n_in, n_out } => {
                        quantize_dense_panels_i8(weights, n_in, n_out)
                    }
                };
                QuantPanels { data, scales }
            });
            Ok(Kernel {
                panels,
                bias,
                quant,
                nm: None,
            })
        }
        Sparsity::NM(n, m) => {
            let (n, m) = (n as usize, m as usize);
            let _pack = capnn_telemetry::time("plan.nm_pack_ns");
            let (values, idx, nnz) = match shape {
                GemmShape::Conv { out_c, krows } => {
                    let (v, i) = select_nm_conv(weights, out_c, krows, n, m);
                    (v, i, nm_nnz(krows, n, m))
                }
                GemmShape::Dense { n_in, n_out } => {
                    let (v, i) = select_nm_dense(weights, n_in, n_out, n, m);
                    (v, i, nm_nnz(n_in, n, m))
                }
            };
            let quant = (precision == Precision::Int8).then(|| {
                let _q = capnn_telemetry::time("plan.quantize_weights_ns");
                let (data, scales) = match shape {
                    GemmShape::Conv { out_c, .. } => quantize_nm_conv_i8(&values, out_c, nnz),
                    GemmShape::Dense { n_out, .. } => quantize_nm_dense_i8(&values, n_out, nnz),
                };
                QuantPanels { data, scales }
            });
            Ok(Kernel {
                panels: Tensor::zeros(&[0]),
                bias,
                quant: None,
                nm: Some(NmPanels {
                    values,
                    idx,
                    nnz,
                    n: n as u8,
                    m: m as u8,
                    dense_len: weights.len(),
                    quant,
                }),
            })
        }
    }
}

/// Physical layout of the batched activation buffer between plan steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Channel-major batched CHW: element `(b, c, p)` at
    /// `(c·batch + b)·plane + p`. Channel counts are *packed* (pruned
    /// channels absent).
    Chw { channels: usize, plane: usize },
    /// Sample-major flat: element `(b, i)` at `b·len + i`. Lengths are
    /// packed (pruned features absent).
    Flat { len: usize },
}

impl Layout {
    fn per_sample_len(self) -> usize {
        match self {
            Layout::Chw { channels, plane } => channels * plane,
            Layout::Flat { len } => len,
        }
    }
}

/// One pre-compiled execution step. Weight tensors hold only kept
/// parameters, in the layout the corresponding kernel consumes directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum PlanStep {
    /// Packed convolution: `spec` carries the *packed* channel counts,
    /// the kernel (step field = index into [`CompiledPlan::kernels`])
    /// holds the kept `[out_c × in_c·k²]` im2col-row weights re-tiled
    /// into the [`pack_conv_panels`] register-tile layout for
    /// [`conv_gemm_into`], geometry is frozen at compile time. When
    /// `fused_relu` is set, the ReLU that followed this layer runs inside
    /// the kernel epilogue instead of as a separate [`PlanStep::Relu`].
    Conv {
        spec: Conv2dSpec,
        /// Index of the step's packed panels + bias (+ int8 twin with
        /// per-output-channel scales) in the plan's kernel table.
        kernel: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        fused_relu: bool,
    },
    /// Packed dense layer on a flat activation; the kernel holds the kept
    /// weights in the [`pack_dense_panels`] layout (the input-major
    /// `[in × out]` transposed matrix re-tiled into column panels) for
    /// the register-blocked batched kernel.
    DenseFlat {
        /// Index of the step's packed panels + bias (+ int8 twin with
        /// per-output-column scales) in the plan's kernel table.
        kernel: usize,
        n_in: usize,
    },
    /// Packed dense layer consuming a channel-major batched CHW
    /// activation directly (the flatten boundary is a layout convention,
    /// not a runtime step). Kernel as in [`PlanStep::DenseFlat`], with
    /// `n_in = channels · plane`.
    DenseFromChw {
        /// Index of the step's packed panels + bias (+ int8 twin with
        /// per-output-column scales) in the plan's kernel table.
        kernel: usize,
        channels: usize,
        plane: usize,
    },
    /// Elementwise ReLU over the whole activation buffer.
    Relu,
    /// Max pooling over each packed channel plane of each sample.
    MaxPool {
        spec: PoolSpec,
        channels: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
    },
    /// Average pooling over each packed channel plane of each sample.
    AvgPool {
        spec: PoolSpec,
        channels: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
    },
}

impl PlanStep {
    /// Stable lowercase step kind, used in telemetry probe names.
    fn kind(&self) -> &'static str {
        match self {
            PlanStep::Conv { .. } => "conv",
            PlanStep::DenseFlat { .. } | PlanStep::DenseFromChw { .. } => "dense",
            PlanStep::Relu => "relu",
            PlanStep::MaxPool { .. } => "maxpool",
            PlanStep::AvgPool { .. } => "avgpool",
        }
    }

    /// The step's kernel-table index, for GEMM steps.
    fn kernel_index(&self) -> Option<usize> {
        match self {
            PlanStep::Conv { kernel, .. }
            | PlanStep::DenseFlat { kernel, .. }
            | PlanStep::DenseFromChw { kernel, .. } => Some(*kernel),
            _ => None,
        }
    }
}

/// Calls between high-water-mark reviews of the [`PlanScratch`] shrink
/// policy; same rationale as the conv workspace's window in
/// `capnn_tensor`.
const SHRINK_WINDOW: u32 = 32;

/// A scratch buffer is released back to its recent peak requirement once
/// its capacity exceeds that peak by this factor.
const SHRINK_FACTOR: usize = 4;

/// Reusable workspace for plan execution: two ping-pong f32 activation
/// buffers, the wide im2col matrix, and — for [`Precision::Int8`] plans —
/// the quantized activation/im2col buffers with their per-sample and
/// per-column scales. After warmup at a given batch size every forward
/// through the plan is allocation-free except the returned output
/// tensors.
///
/// Buffers do not stay at their high-water mark forever: every
/// [`SHRINK_WINDOW`] chunk executions the scratch compares each buffer
/// family's capacity against the largest requirement seen in that window
/// and releases any buffer more than [`SHRINK_FACTOR`]× oversized, so one
/// huge warmup batch no longer pins its allocation for the lifetime of
/// the engine. [`PlanScratch::shrink_to`] caps the buffers immediately.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    cols: Vec<f32>,
    /// Quantized activation buffer (int8 plans).
    qa: Vec<i8>,
    /// Quantized wide im2col matrix (int8 plans).
    qcols: Vec<i8>,
    /// Pair-interleaved i16 widening of `qcols`, produced once per batch
    /// for the dense-panel int8 conv kernel (int8 plans).
    qcols16: Vec<i16>,
    /// Per-sample activation scales (int8 plans).
    a_scales: Vec<f32>,
    /// Per-column scale broadcast for the conv GEMM (int8 plans).
    c_scales: Vec<f32>,
    /// Chunk executions since the shrink policy last reviewed capacities.
    calls_since_review: u32,
    /// Peak element requirement in the current window per buffer family:
    /// f32 activations (`a`/`b`), `cols`, int8 (`qa`/`qcols`), scales
    /// (`a_scales`/`c_scales`).
    window_peak: [usize; 4],
}

impl PlanScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps every workspace buffer at `max_elems` elements right now,
    /// returning excess capacity to the allocator (buffers regrow on
    /// demand). `shrink_to(0)` frees the workspace entirely.
    pub fn shrink_to(&mut self, max_elems: usize) {
        for v in [
            &mut self.a,
            &mut self.b,
            &mut self.cols,
            &mut self.a_scales,
            &mut self.c_scales,
        ] {
            v.truncate(max_elems);
            v.shrink_to(max_elems);
        }
        for v in [&mut self.qa, &mut self.qcols] {
            v.truncate(max_elems);
            v.shrink_to(max_elems);
        }
        self.qcols16.truncate(max_elems);
        self.qcols16.shrink_to(max_elems);
        self.calls_since_review = 0;
        self.window_peak = [0; 4];
    }

    /// Records one chunk's buffer requirements and, at window boundaries,
    /// releases buffers whose capacity exceeds the window peak by
    /// [`SHRINK_FACTOR`]×. Called after the chunk ran (the buffers already
    /// hold at least this call's requirement, so a shrink can never drop
    /// below a live need).
    fn note_use(&mut self, f32_act: usize, cols: usize, i8_need: usize, scales: usize) {
        self.window_peak[0] = self.window_peak[0].max(f32_act);
        self.window_peak[1] = self.window_peak[1].max(cols);
        self.window_peak[2] = self.window_peak[2].max(i8_need);
        self.window_peak[3] = self.window_peak[3].max(scales);
        self.calls_since_review += 1;
        if self.calls_since_review >= SHRINK_WINDOW {
            let [act, cols, i8n, sc] = self.window_peak;
            shrink_oversized(&mut self.a, act);
            shrink_oversized(&mut self.b, act);
            shrink_oversized(&mut self.cols, cols);
            shrink_oversized(&mut self.qa, i8n);
            shrink_oversized(&mut self.qcols, i8n);
            // The i16 widening tracks `qcols` element-for-element (plus
            // at most one padded row), so it shares the int8 peak.
            shrink_oversized(&mut self.qcols16, i8n);
            shrink_oversized(&mut self.a_scales, sc);
            shrink_oversized(&mut self.c_scales, sc);
            self.calls_since_review = 0;
            self.window_peak = [0; 4];
        }
    }

    /// Current buffer capacities (`a`, `b`, `cols`, `qa`, `qcols`), for
    /// the shrink-policy tests.
    #[cfg(test)]
    fn capacities(&self) -> [usize; 5] {
        [
            self.a.capacity(),
            self.b.capacity(),
            self.cols.capacity(),
            self.qa.capacity(),
            self.qcols.capacity(),
        ]
    }
}

/// Releases `v` back to `peak` elements if its capacity is more than
/// [`SHRINK_FACTOR`]× the peak requirement.
fn shrink_oversized<T>(v: &mut Vec<T>, peak: usize) {
    if v.capacity() > peak.saturating_mul(SHRINK_FACTOR) {
        v.truncate(peak);
        v.shrink_to(peak);
    }
}

/// A [`Network`] + [`PruneMask`] compiled once into packed weights and
/// frozen geometry; see the [module docs](self) for the execution model.
///
/// Plans are cheap to share: `core`'s profile cache clones
/// `Arc<CompiledPlan>` handles across users with equivalent profiles.
///
/// # Examples
///
/// ```
/// use capnn_nn::{NetworkBuilder, PruneMask};
///
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 7).build().unwrap();
/// let mut mask = PruneMask::all_kept(&net);
/// mask.prune(0, 2).unwrap();
/// let plan = net.compile(&mask).unwrap();
/// let x = capnn_tensor::Tensor::ones(&[4]);
/// let logits = plan.forward(&x).unwrap();
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    steps: Vec<PlanStep>,
    /// Packed weight kernels, referenced by index from the GEMM steps and
    /// shared (`Arc`) with other plans compiled through the same
    /// [`PanelPool`]. Within one plan every entry is distinct (keys carry
    /// the layer index); across plans entries alias freely.
    kernels: Vec<Arc<Kernel>>,
    input_dims: Vec<usize>,
    /// Packed output position → original flat logit index. Pruned output
    /// units stay exact zeros in the returned logits, preserving original
    /// class ids.
    final_map: Vec<usize>,
    /// Flat length of the original (unpruned) final activation.
    num_classes: usize,
    /// Per-sample multiply–accumulates through the packed network; drives
    /// the batch-partitioning threshold.
    per_sample_macs: u64,
    /// Kept parameters in the packed buffers (excluding the zero padding
    /// of partial weight panels).
    packed_params: usize,
    /// Numeric precision the plan's GEMM steps execute in.
    precision: Precision,
    /// Weight-sparsity label: the N:M tier of the plan's sparse GEMM
    /// kernels ([`Sparsity::Dense`] when every layer is dense). For
    /// per-layer hybrid plans this is the first non-dense tier — the
    /// cache/telemetry label, not a per-step dispatch input (each kernel
    /// carries its own compressed twin).
    sparsity: Sparsity,
}

impl CompiledPlan {
    /// Compiles `net` + `mask` into an f32 plan. Prefer the
    /// [`Network::compile`] convenience method.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the mask does not span the network,
    /// carries flags for a non-prunable layer, or a flag vector does not
    /// match its layer's unit count.
    pub fn compile(net: &Network, mask: &PruneMask) -> Result<Self, NnError> {
        Self::compile_with_precision(net, mask, Precision::F32)
    }

    /// Compiles `net` + `mask` into a plan whose GEMM steps execute at
    /// `precision`. [`Precision::Int8`] additionally quantizes every
    /// packed conv/dense panel buffer (symmetric, one scale per output
    /// channel/column); activations are quantized dynamically per sample
    /// at run time, so no calibration data is needed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::compile`].
    pub fn compile_with_precision(
        net: &Network,
        mask: &PruneMask,
        precision: Precision,
    ) -> Result<Self, NnError> {
        Self::compile_shared(net, mask, precision, None)
    }

    /// [`CompiledPlan::compile_with_precision`] drawing packed weight
    /// kernels from `pool`: layers whose kept units match an
    /// already-interned kernel reuse that allocation (and skip its
    /// pack/quantize work) instead of packing their own. The resulting
    /// plan is bitwise identical to an unpooled compile — sharing is an
    /// allocation property, never a numeric one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::compile`].
    pub fn compile_shared(
        net: &Network,
        mask: &PruneMask,
        precision: Precision,
        pool: Option<&PanelPool>,
    ) -> Result<Self, NnError> {
        Self::compile_sparse(net, mask, precision, Sparsity::Dense, pool)
    }

    /// [`CompiledPlan::compile_shared`] with a uniform weight-sparsity
    /// tier: [`Sparsity::NM`] compresses every conv/dense kernel to the
    /// `n` largest-magnitude weights of each `m` consecutive reduction
    /// positions *within* the mask's kept rows/columns (the hybrid tier
    /// from the prune-sweep work). Composes with [`Precision::Int8`] —
    /// the compressed values get the int8 twin.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::compile`], plus
    /// [`NnError::Config`] for a degenerate pattern (`N:M` needs
    /// `0 < N < M`).
    pub fn compile_sparse(
        net: &Network,
        mask: &PruneMask,
        precision: Precision,
        sparsity: Sparsity,
        pool: Option<&PanelPool>,
    ) -> Result<Self, NnError> {
        let layers = vec![sparsity; net.len()];
        Self::compile_sparse_layers(net, mask, precision, &layers, pool)
    }

    /// [`CompiledPlan::compile_sparse`] with one sparsity tier **per
    /// layer** (`layers_sparsity[i]` applies to layer `i`; non-GEMM
    /// layers ignore theirs). This is the entry the profile-side accuracy
    /// gate uses to enable N:M only on layers that tolerate it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::compile_sparse`], plus
    /// [`NnError::Config`] when `layers_sparsity` does not span the
    /// network.
    pub fn compile_sparse_layers(
        net: &Network,
        mask: &PruneMask,
        precision: Precision,
        layers_sparsity: &[Sparsity],
        pool: Option<&PanelPool>,
    ) -> Result<Self, NnError> {
        let _span = capnn_telemetry::time("plan.compile_ns");
        capnn_telemetry::count("plan.compiled", 1);
        if precision == Precision::Int8 {
            capnn_telemetry::count("plan.compiled_int8", 1);
        }
        if layers_sparsity.len() != net.len() {
            return Err(NnError::Config(format!(
                "sparsity spans {} layers, network has {}",
                layers_sparsity.len(),
                net.len()
            )));
        }
        for sp in layers_sparsity {
            sp.validate()?;
        }
        let plan_sparsity = layers_sparsity
            .iter()
            .copied()
            .find(|sp| *sp != Sparsity::Dense)
            .unwrap_or(Sparsity::Dense);
        if plan_sparsity != Sparsity::Dense {
            capnn_telemetry::count("plan.compiled_nm", 1);
        }
        if mask.len() != net.len() {
            return Err(NnError::Config(format!(
                "mask spans {} layers, network has {}",
                mask.len(),
                net.len()
            )));
        }
        let shapes = net.layer_shapes()?;
        let input_dims = net.input_dims().to_vec();

        // Activation bookkeeping in ORIGINAL coordinates: for CHW buffers
        // `kept` holds kept channel ids, for flat buffers kept flat
        // element ids.
        let mut layout = if input_dims.len() == 3 {
            Layout::Chw {
                channels: input_dims[0],
                plane: input_dims[1] * input_dims[2],
            }
        } else {
            Layout::Flat {
                len: input_dims.iter().product(),
            }
        };
        let mut kept: Vec<usize> = match layout {
            Layout::Chw { channels, .. } => (0..channels).collect(),
            Layout::Flat { len } => (0..len).collect(),
        };
        // A Flatten marks the activation as logically flat while the
        // buffer stays CHW until a dense layer consumes it.
        let mut flattened = false;
        let mut steps = Vec::with_capacity(net.len());
        let mut kernels: Vec<Arc<Kernel>> = Vec::new();
        let mut macs: u64 = 0;
        let mut packed_params = 0usize;

        for (i, layer) in net.layers().iter().enumerate() {
            let flags = mask.layer_flags(i);
            if flags.is_some() && layer.unit_count().is_none() {
                return Err(NnError::Config(format!(
                    "plan compilation supports masks on dense/conv layers only; \
                     layer {i} ({}) carries mask flags",
                    layer.kind()
                )));
            }
            match layer {
                Layer::Conv2d(c) => {
                    let kept_out = kept_units(flags, c.spec().out_channels, i)?;
                    let k = c.spec().kernel;
                    let kk = k * k;
                    let (h, w) = (shapes[i][1], shapes[i][2]);
                    let (oh, ow) = c.spec().output_hw(h, w);
                    let mut spec = *c.spec();
                    spec.in_channels = kept.len();
                    spec.out_channels = kept_out.len();
                    let krows = kept.len() * kk;
                    let sp = layers_sparsity[i];
                    // MAC/parameter accounting follows the kept weights:
                    // an N:M kernel multiplies only `nnz` of the `krows`
                    // reduction rows per output.
                    let nnz = sp.nnz(krows);
                    macs += (kept_out.len() * oh * ow) as u64 * nnz as u64;
                    // Count kept parameters only — the zero padding of
                    // partial register-tile panels is a layout artifact,
                    // not model state.
                    packed_params += kept_out.len() * nnz + kept_out.len();
                    let key = PanelKey {
                        layer: i,
                        precision,
                        sparsity: sp,
                        kept_in: kept.clone(),
                        kept_out: kept_out.clone(),
                    };
                    let kernel = obtain_kernel(pool, key, || {
                        let mut weights = vec![0.0f32; kept_out.len() * krows];
                        let mut bias = Tensor::zeros(&[kept_out.len()]);
                        let src_w = c.weights().as_slice();
                        let src_b = c.bias().as_slice();
                        let in_c_old = c.spec().in_channels;
                        {
                            let bv = bias.as_mut_slice();
                            for (no, &oc) in kept_out.iter().enumerate() {
                                bv[no] = src_b[oc];
                                for (ni, &ic) in kept.iter().enumerate() {
                                    let dst = (no * kept.len() + ni) * kk;
                                    let src = (oc * in_c_old + ic) * kk;
                                    weights[dst..dst + kk].copy_from_slice(&src_w[src..src + kk]);
                                }
                            }
                        }
                        build_gemm_kernel(
                            GemmShape::Conv {
                                out_c: kept_out.len(),
                                krows,
                            },
                            &weights,
                            bias,
                            precision,
                            sp,
                        )
                    })?;
                    let kidx = kernels.len();
                    kernels.push(kernel);
                    steps.push(PlanStep::Conv {
                        spec,
                        kernel: kidx,
                        in_hw: (h, w),
                        out_hw: (oh, ow),
                        fused_relu: false,
                    });
                    kept = kept_out;
                    layout = Layout::Chw {
                        channels: kept.len(),
                        plane: oh * ow,
                    };
                }
                Layer::Dense(d) => {
                    let kept_out = kept_units(flags, d.out_features(), i)?;
                    // Kept input columns in original flat coordinates.
                    let from_chw = match layout {
                        Layout::Chw { plane, .. } if flattened => Some(plane),
                        _ => None,
                    };
                    let kept_cols: Vec<usize> = match from_chw {
                        Some(plane) => kept
                            .iter()
                            .flat_map(|&c| c * plane..(c + 1) * plane)
                            .collect(),
                        None => kept.clone(),
                    };
                    let in_old = d.in_features();
                    let n_in = kept_cols.len();
                    let n_out = kept_out.len();
                    let sp = layers_sparsity[i];
                    let nnz = sp.nnz(n_in);
                    macs += (n_out * nnz) as u64;
                    packed_params += nnz * n_out + n_out;
                    // Keyed on the pre-expansion kept ids: `kept_cols`
                    // derives deterministically from `kept` and the
                    // layer's (fixed) plane, so equal keys imply equal
                    // columns.
                    let key = PanelKey {
                        layer: i,
                        precision,
                        sparsity: sp,
                        kept_in: kept.clone(),
                        kept_out: kept_out.clone(),
                    };
                    let kernel = obtain_kernel(pool, key, || {
                        // Input-major transposed weights, then re-tiled
                        // into column panels for the register-blocked
                        // kernel.
                        let mut wt = vec![0.0f32; n_in * n_out];
                        let mut bias = Tensor::zeros(&[n_out]);
                        let src_w = d.weights().as_slice();
                        let src_b = d.bias().as_slice();
                        {
                            let bv = bias.as_mut_slice();
                            for (no, &o) in kept_out.iter().enumerate() {
                                bv[no] = src_b[o];
                                for (ci, &col) in kept_cols.iter().enumerate() {
                                    wt[ci * n_out + no] = src_w[o * in_old + col];
                                }
                            }
                        }
                        build_gemm_kernel(
                            GemmShape::Dense { n_in, n_out },
                            &wt,
                            bias,
                            precision,
                            sp,
                        )
                    })?;
                    let kidx = kernels.len();
                    kernels.push(kernel);
                    match (from_chw, layout) {
                        (Some(plane), Layout::Chw { channels, .. }) => {
                            steps.push(PlanStep::DenseFromChw {
                                kernel: kidx,
                                channels,
                                plane,
                            });
                        }
                        _ => steps.push(PlanStep::DenseFlat { kernel: kidx, n_in }),
                    }
                    kept = kept_out;
                    layout = Layout::Flat { len: n_out };
                    flattened = false;
                }
                Layer::Relu => {
                    // Peephole: a ReLU directly after a conv runs as the
                    // kernel's fused epilogue — one pass over the output
                    // instead of two. `max(0.0)` over the same elements in
                    // the same order, so results are bit-identical.
                    if let Some(PlanStep::Conv { fused_relu, .. }) = steps.last_mut() {
                        *fused_relu = true;
                    } else {
                        steps.push(PlanStep::Relu);
                    }
                }
                Layer::MaxPool2d(spec) | Layer::AvgPool2d(spec) => {
                    let (h, w) = (shapes[i][1], shapes[i][2]);
                    let (oh, ow) = spec.output_hw(h, w);
                    let channels = kept.len();
                    let step = match layer {
                        Layer::MaxPool2d(_) => PlanStep::MaxPool {
                            spec: *spec,
                            channels,
                            in_hw: (h, w),
                            out_hw: (oh, ow),
                        },
                        _ => PlanStep::AvgPool {
                            spec: *spec,
                            channels,
                            in_hw: (h, w),
                            out_hw: (oh, ow),
                        },
                    };
                    macs += (channels * oh * ow * spec.window * spec.window) as u64;
                    steps.push(step);
                    layout = Layout::Chw {
                        channels,
                        plane: oh * ow,
                    };
                }
                Layer::Flatten => {
                    if shapes[i].len() == 3 {
                        flattened = true;
                    }
                    // flat-on-flat is a no-op either way
                }
            }
        }

        // Packed position → original flat logit index.
        let final_map: Vec<usize> = match layout {
            Layout::Flat { .. } => kept,
            Layout::Chw { plane, .. } => kept
                .iter()
                .flat_map(|&c| c * plane..(c + 1) * plane)
                .collect(),
        };
        let num_classes = shapes.last().map(|s| s.iter().product()).unwrap_or(0);

        // Fleet-visible density of the compiled N:M kernels: kept
        // compressed weights over the dense kept-weight count they
        // replaced (1.0 would mean N:M bought nothing).
        if capnn_telemetry::enabled() {
            let (mut nm_kept, mut nm_dense) = (0usize, 0usize);
            for kernel in &kernels {
                if let Some(nm) = &kernel.nm {
                    nm_kept += nm.nnz * kernel.bias.len();
                    nm_dense += nm.dense_len;
                }
            }
            if nm_dense > 0 {
                capnn_telemetry::set_gauge("plan.nm_density", nm_kept as f64 / nm_dense as f64);
            }
        }

        Ok(Self {
            steps,
            kernels,
            input_dims,
            final_map,
            num_classes,
            per_sample_macs: macs.max(1),
            packed_params,
            precision,
            sparsity: plan_sparsity,
        })
    }

    /// The numeric precision the plan's GEMM steps execute in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The plan's weight-sparsity label ([`Sparsity::Dense`] unless it
    /// was compiled through [`CompiledPlan::compile_sparse`] with an N:M
    /// tier on at least one layer).
    pub fn sparsity(&self) -> Sparsity {
        self.sparsity
    }

    /// The input shape the plan expects.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Flat length of the original final activation (logit vector length,
    /// pruned classes included as exact zeros).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-sample multiply–accumulates through the packed network.
    pub fn per_sample_macs(&self) -> u64 {
        self.per_sample_macs
    }

    /// Parameters stored in the packed weight buffers — the plan's actual
    /// memory footprint, versus the source network's `param_count()`.
    pub fn packed_param_count(&self) -> usize {
        self.packed_params
    }

    /// Resident heap bytes attributable to this plan, counting shared
    /// weight kernels once across their co-owners: each kernel's bytes
    /// are divided by its current [`Arc::strong_count`], so summing
    /// `resident_bytes()` over every plan compiled through one
    /// [`PanelPool`] yields the fleet's true panel footprint (a kernel
    /// shared by N plans contributes its size once, not N times).
    ///
    /// The count is a snapshot — it changes as other plans sharing a
    /// kernel are created or dropped. Cloning the plan's own `Arc` handle
    /// does not affect it (plan clones share the same inner kernels).
    pub fn resident_bytes(&self) -> usize {
        let mut shared = 0.0f64;
        for kernel in &self.kernels {
            let bytes = std::mem::size_of::<Kernel>() + kernel.heap_bytes();
            shared += bytes as f64 / Arc::strong_count(kernel) as f64;
        }
        self.fixed_bytes() + shared.round() as usize
    }

    /// Plan-private heap bytes: the struct plus its step/index buffers,
    /// excluding the shared weight kernels entirely.
    pub fn fixed_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.steps.capacity() * std::mem::size_of::<PlanStep>()
            + self.kernels.capacity() * std::mem::size_of::<Arc<Kernel>>()
            + self.input_dims.capacity() * std::mem::size_of::<usize>()
            + self.final_map.capacity() * std::mem::size_of::<usize>()
    }

    /// Identity and full byte footprint of each weight kernel, for callers
    /// that amortize shared panels over a *set of plans they own*. Unlike
    /// [`CompiledPlan::resident_bytes`] — whose `Arc::strong_count` shares
    /// shift as handles are cloned or dropped anywhere in the process —
    /// refcounting these identities over a fixed plan set gives an
    /// accounting that only changes when the set itself changes.
    pub fn kernel_footprints(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.kernels.iter().map(|k| {
            (
                Arc::as_ptr(k) as usize,
                std::mem::size_of::<Kernel>() + k.heap_bytes(),
            )
        })
    }

    /// Single-sample inference through the packed plan. Returns the flat
    /// `[num_classes]` logit vector in *original* class coordinates
    /// (pruned classes are exact zeros).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `input` does not match the plan's
    /// input shape.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut scratch = PlanScratch::new();
        self.forward_with_scratch(input, &mut scratch)
    }

    /// [`CompiledPlan::forward`] through a reusable [`PlanScratch`] — the
    /// serving hot path; allocation-free after warmup except the returned
    /// tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::forward`].
    pub fn forward_with_scratch(
        &self,
        input: &Tensor,
        scratch: &mut PlanScratch,
    ) -> Result<Tensor, NnError> {
        let mut out = self.run_chunk(
            std::slice::from_ref(input),
            scratch,
            parallel::max_threads(),
        )?;
        out.pop()
            .ok_or_else(|| NnError::Internal("plan produced no output for its input".into()))
    }

    /// Batched inference: runs all samples through the plan with one wide
    /// im2col + GEMM per conv layer and weight-row reuse across samples in
    /// the dense kernels, partitioning the batch across the
    /// [`capnn_tensor::parallel`] pool when each worker would own enough
    /// MACs to be worth spawning. Outputs are in input order and
    /// value-identical (`==` per element, argmax-identical; only the sign
    /// of exact zeros may differ) to per-sample [`CompiledPlan::forward`]
    /// calls.
    ///
    /// # Errors
    ///
    /// Returns an error if any input does not match the plan's input
    /// shape.
    pub fn forward_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, NnError> {
        let mut scratch = PlanScratch::new();
        self.forward_batch_with_scratch(inputs, &mut scratch)
    }

    /// [`CompiledPlan::forward_batch`] through a caller-held scratch
    /// (used for the single-worker path; parallel workers hold their own).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlan::forward_batch`].
    pub fn forward_batch_with_scratch(
        &self,
        inputs: &[Tensor],
        scratch: &mut PlanScratch,
    ) -> Result<Vec<Tensor>, NnError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let threads = parallel::max_threads();
        // Each worker must own enough MACs to be worth a spawn AND at
        // least one full sample tile of the batched dense kernels —
        // splitting below the tile width forfeits the weight-traffic
        // amortization that makes batching pay in the first place.
        const MIN_TILE_SAMPLES: usize = 8;
        let min_per = parallel::min_items_per_thread(self.per_sample_macs).max(MIN_TILE_SAMPLES);
        let workers = if threads <= 1 {
            1
        } else {
            threads.min(inputs.len() / min_per).max(1)
        };
        if workers <= 1 {
            return self.run_chunk(inputs, scratch, threads);
        }
        let ranges = parallel::chunk_ranges(inputs.len(), workers);
        let results: Vec<Result<Vec<Tensor>, NnError>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    s.spawn(move || {
                        let mut sc = PlanScratch::new();
                        self.run_chunk(&inputs[r], &mut sc, 1)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("capnn-nn plan worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(inputs.len());
        for chunk in results {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// Runs one contiguous chunk of samples through every step. All
    /// samples share the wide buffers; each output element reads only its
    /// own sample's stripe, in the same accumulation order, so per-sample
    /// results are value-identical whatever the chunk's size (only the
    /// sign of exact zeros may differ between the kernels' sample paths).
    fn run_chunk(
        &self,
        inputs: &[Tensor],
        scratch: &mut PlanScratch,
        inner_threads: usize,
    ) -> Result<Vec<Tensor>, NnError> {
        let batch = inputs.len();
        for x in inputs {
            if x.dims() != self.input_dims {
                return Err(NnError::Config(format!(
                    "plan input must be {:?}, got {:?}",
                    self.input_dims,
                    x.dims()
                )));
            }
        }
        let mut cur = std::mem::take(&mut scratch.a);
        let mut nxt = std::mem::take(&mut scratch.b);
        let mut cols = std::mem::take(&mut scratch.cols);
        let mut qa = std::mem::take(&mut scratch.qa);
        let mut qcols = std::mem::take(&mut scratch.qcols);
        let mut qcols16 = std::mem::take(&mut scratch.qcols16);
        let mut a_scales = std::mem::take(&mut scratch.a_scales);
        let mut c_scales = std::mem::take(&mut scratch.c_scales);
        // Peak element requirements this chunk, per buffer family, for the
        // scratch shrink policy.
        let mut f32_peak = 0usize;
        let mut cols_peak = 0usize;
        let mut i8_peak = 0usize;
        let mut scale_peak = 0usize;

        // Load inputs into the initial layout.
        let mut layout = if self.input_dims.len() == 3 {
            Layout::Chw {
                channels: self.input_dims[0],
                plane: self.input_dims[1] * self.input_dims[2],
            }
        } else {
            Layout::Flat {
                len: self.input_dims.iter().product(),
            }
        };
        grow(&mut cur, layout.per_sample_len() * batch);
        f32_peak = f32_peak.max(layout.per_sample_len() * batch);
        match layout {
            Layout::Chw { channels, plane } => {
                for (b, x) in inputs.iter().enumerate() {
                    let xs = x.as_slice();
                    for c in 0..channels {
                        cur[(c * batch + b) * plane..(c * batch + b + 1) * plane]
                            .copy_from_slice(&xs[c * plane..(c + 1) * plane]);
                    }
                }
            }
            Layout::Flat { len } => {
                for (b, x) in inputs.iter().enumerate() {
                    cur[b * len..(b + 1) * len].copy_from_slice(x.as_slice());
                }
            }
        }

        // Per-step timings accumulate locally and flush once per chunk, so
        // spawned workers never contend on the registry mutex mid-step.
        let telemetry = capnn_telemetry::enabled();
        // (step index, kind, elapsed ns, FLOPs — 0 for non-GEMM steps —
        // and whether the step ran its int8 / N:M kernel).
        let mut timings: Vec<(usize, &'static str, u64, u64, bool, bool)> = Vec::new();
        // Dynamic activation quantization time this chunk (int8 plans).
        let mut quantize_ns: u64 = 0;
        for (si, step) in self.steps.iter().enumerate() {
            let t0 = telemetry.then(std::time::Instant::now);
            let mut flops: u64 = 0;
            let step_int8 = step
                .kernel_index()
                .is_some_and(|ki| self.kernels[ki].is_int8());
            let step_nm = step
                .kernel_index()
                .is_some_and(|ki| self.kernels[ki].nm.is_some());
            match step {
                PlanStep::Conv {
                    spec,
                    kernel,
                    in_hw: (h, w),
                    out_hw: (oh, ow),
                    fused_relu,
                } => {
                    let kern = &*self.kernels[*kernel];
                    let bias = &kern.bias;
                    let oplane = oh * ow;
                    let krows = spec.in_channels * spec.kernel * spec.kernel;
                    let wide = batch * oplane;
                    grow(&mut nxt, spec.out_channels * wide);
                    // Reduction depth per output: an N:M kernel touches
                    // only its kept weights.
                    let red = kern.nm.as_ref().map_or(krows, |nm| nm.nnz);
                    if step_int8 {
                        let q0 = telemetry.then(std::time::Instant::now);
                        let in_plane = h * w;
                        let in_len = spec.in_channels * in_plane * batch;
                        grow(&mut qa, in_len);
                        grow(&mut a_scales, batch);
                        quantize_chw_per_sample(
                            &cur,
                            batch,
                            spec.in_channels,
                            in_plane,
                            &mut qa,
                            &mut a_scales,
                        );
                        // Wide im2col columns are sample-major within
                        // each kernel row (column j = b·oplane + p), so
                        // the per-column scales are a per-sample
                        // broadcast over each sample's window.
                        grow(&mut c_scales, wide);
                        for b in 0..batch {
                            c_scales[b * oplane..(b + 1) * oplane].fill(a_scales[b]);
                        }
                        grow(&mut qcols, krows * wide);
                        if let Some(q0) = q0 {
                            quantize_ns +=
                                u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        }
                        im2col_batch_into(&qa, spec, *h, *w, batch, &mut qcols, inner_threads);
                        match &kern.nm {
                            Some(nm) => {
                                let q = nm.quant.as_ref().expect("int8 plan carries N:M twin");
                                conv_nm_gemm_i8_into(
                                    &q.data,
                                    &q.scales,
                                    &nm.idx,
                                    &qcols,
                                    &c_scales,
                                    Some(bias.as_slice()),
                                    &mut nxt,
                                    spec.out_channels,
                                    nm.nnz,
                                    wide,
                                    *fused_relu,
                                    inner_threads,
                                );
                            }
                            None => {
                                let q = kern.quant.as_ref().expect("int8 plan carries quant twin");
                                if 2 * krows * wide <= I8_WIDEN_MAX_BYTES {
                                    // Sign-extend the im2col buffer to i16
                                    // once per batch; the widened kernel then
                                    // skips the per-panel/per-worker unpack
                                    // entirely.
                                    widen_i8_cols_pairs(&qcols, krows, wide, &mut qcols16);
                                    conv_gemm_i8w_into(
                                        &q.data,
                                        &q.scales,
                                        &qcols16,
                                        &c_scales,
                                        Some(bias.as_slice()),
                                        &mut nxt,
                                        spec.out_channels,
                                        krows,
                                        wide,
                                        *fused_relu,
                                        inner_threads,
                                    );
                                } else {
                                    // Large batches double the im2col
                                    // footprint when widened and fall out of
                                    // cache; the in-kernel unpack re-reads
                                    // the compact i8 matrix instead.
                                    conv_gemm_i8_into(
                                        &q.data,
                                        &q.scales,
                                        &qcols,
                                        &c_scales,
                                        Some(bias.as_slice()),
                                        &mut nxt,
                                        spec.out_channels,
                                        krows,
                                        wide,
                                        *fused_relu,
                                        inner_threads,
                                    );
                                }
                            }
                        }
                        i8_peak = i8_peak.max(in_len).max(krows * wide);
                        scale_peak = scale_peak.max(wide);
                    } else {
                        grow(&mut cols, krows * wide);
                        im2col_batch_into(&cur, spec, *h, *w, batch, &mut cols, inner_threads);
                        cols_peak = cols_peak.max(krows * wide);
                        match &kern.nm {
                            Some(nm) => conv_nm_gemm_into(
                                &nm.values,
                                &nm.idx,
                                Some(bias.as_slice()),
                                &cols,
                                &mut nxt,
                                spec.out_channels,
                                nm.nnz,
                                wide,
                                *fused_relu,
                                inner_threads,
                            ),
                            None => conv_gemm_into(
                                kern.panels.as_slice(),
                                &cols,
                                Some(bias.as_slice()),
                                &mut nxt,
                                spec.out_channels,
                                krows,
                                wide,
                                *fused_relu,
                                inner_threads,
                            ),
                        }
                    }
                    flops = 2 * (spec.out_channels * wide) as u64 * red as u64;
                    std::mem::swap(&mut cur, &mut nxt);
                    layout = Layout::Chw {
                        channels: spec.out_channels,
                        plane: oplane,
                    };
                }
                PlanStep::DenseFlat { kernel, n_in } => {
                    let kern = &*self.kernels[*kernel];
                    let bias = &kern.bias;
                    let n_out = bias.len();
                    grow(&mut nxt, batch * n_out);
                    let red = kern.nm.as_ref().map_or(*n_in, |nm| nm.nnz);
                    if step_int8 {
                        let q0 = telemetry.then(std::time::Instant::now);
                        grow(&mut qa, batch * n_in);
                        grow(&mut a_scales, batch);
                        quantize_flat_per_sample(&cur, batch, *n_in, &mut qa, &mut a_scales);
                        if let Some(q0) = q0 {
                            quantize_ns +=
                                u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        }
                        match &kern.nm {
                            Some(nm) => {
                                let q = nm.quant.as_ref().expect("int8 plan carries N:M twin");
                                dense_nm_batch_i8_into(
                                    &qa,
                                    &a_scales,
                                    &q.data,
                                    &q.scales,
                                    &nm.idx,
                                    bias.as_slice(),
                                    &mut nxt,
                                    batch,
                                    *n_in,
                                    n_out,
                                    nm.nnz,
                                    inner_threads,
                                );
                            }
                            None => {
                                let q = kern.quant.as_ref().expect("int8 plan carries quant twin");
                                dense_batch_i8_into(
                                    &qa,
                                    &a_scales,
                                    &q.data,
                                    &q.scales,
                                    bias.as_slice(),
                                    &mut nxt,
                                    batch,
                                    *n_in,
                                    n_out,
                                    inner_threads,
                                );
                            }
                        }
                        i8_peak = i8_peak.max(batch * n_in);
                        scale_peak = scale_peak.max(batch);
                    } else {
                        match &kern.nm {
                            Some(nm) => dense_nm_batch_into(
                                &cur,
                                &nm.values,
                                &nm.idx,
                                bias.as_slice(),
                                &mut nxt,
                                batch,
                                *n_in,
                                n_out,
                                nm.nnz,
                                inner_threads,
                            ),
                            None => dense_batch_into(
                                &cur,
                                kern.panels.as_slice(),
                                bias.as_slice(),
                                &mut nxt,
                                batch,
                                *n_in,
                                n_out,
                                inner_threads,
                            ),
                        }
                    }
                    flops = 2 * (batch * red * n_out) as u64;
                    std::mem::swap(&mut cur, &mut nxt);
                    layout = Layout::Flat { len: n_out };
                }
                PlanStep::DenseFromChw {
                    kernel,
                    channels,
                    plane,
                } => {
                    let kern = &*self.kernels[*kernel];
                    let bias = &kern.bias;
                    let n_out = bias.len();
                    let n_in = channels * plane;
                    grow(&mut nxt, batch * n_out);
                    let red = kern.nm.as_ref().map_or(n_in, |nm| nm.nnz);
                    if step_int8 {
                        let q0 = telemetry.then(std::time::Instant::now);
                        grow(&mut qa, batch * n_in);
                        grow(&mut a_scales, batch);
                        quantize_chw_per_sample(
                            &cur,
                            batch,
                            *channels,
                            *plane,
                            &mut qa,
                            &mut a_scales,
                        );
                        if let Some(q0) = q0 {
                            quantize_ns +=
                                u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        }
                        match &kern.nm {
                            Some(nm) => {
                                let q = nm.quant.as_ref().expect("int8 plan carries N:M twin");
                                dense_nm_batch_i8_chw_into(
                                    &qa,
                                    &a_scales,
                                    &q.data,
                                    &q.scales,
                                    &nm.idx,
                                    bias.as_slice(),
                                    &mut nxt,
                                    batch,
                                    *channels,
                                    *plane,
                                    n_out,
                                    nm.nnz,
                                    inner_threads,
                                );
                            }
                            None => {
                                let q = kern.quant.as_ref().expect("int8 plan carries quant twin");
                                dense_batch_i8_chw_into(
                                    &qa,
                                    &a_scales,
                                    &q.data,
                                    &q.scales,
                                    bias.as_slice(),
                                    &mut nxt,
                                    batch,
                                    *channels,
                                    *plane,
                                    n_out,
                                    inner_threads,
                                );
                            }
                        }
                        i8_peak = i8_peak.max(batch * n_in);
                        scale_peak = scale_peak.max(batch);
                    } else {
                        match &kern.nm {
                            Some(nm) => dense_nm_batch_chw_into(
                                &cur,
                                &nm.values,
                                &nm.idx,
                                bias.as_slice(),
                                &mut nxt,
                                batch,
                                *channels,
                                *plane,
                                n_out,
                                nm.nnz,
                                inner_threads,
                            ),
                            None => dense_batch_chw_into(
                                &cur,
                                kern.panels.as_slice(),
                                bias.as_slice(),
                                &mut nxt,
                                batch,
                                *channels,
                                *plane,
                                n_out,
                                inner_threads,
                            ),
                        }
                    }
                    flops = 2 * (batch * red * n_out) as u64;
                    std::mem::swap(&mut cur, &mut nxt);
                    layout = Layout::Flat { len: n_out };
                }
                PlanStep::Relu => {
                    for v in cur.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                PlanStep::MaxPool {
                    spec,
                    channels,
                    in_hw: (h, w),
                    out_hw: (oh, ow),
                } => {
                    pool_planes(
                        &cur,
                        &mut nxt,
                        channels * batch,
                        (*h, *w),
                        (*oh, *ow),
                        |src, dst| max_pool_plane(src, *h, *w, spec, dst, *oh, *ow),
                    );
                    std::mem::swap(&mut cur, &mut nxt);
                    layout = Layout::Chw {
                        channels: *channels,
                        plane: oh * ow,
                    };
                }
                PlanStep::AvgPool {
                    spec,
                    channels,
                    in_hw: (h, w),
                    out_hw: (oh, ow),
                } => {
                    pool_planes(
                        &cur,
                        &mut nxt,
                        channels * batch,
                        (*h, *w),
                        (*oh, *ow),
                        |src, dst| avg_pool_plane(src, *h, *w, spec, dst, *oh, *ow),
                    );
                    std::mem::swap(&mut cur, &mut nxt);
                    layout = Layout::Chw {
                        channels: *channels,
                        plane: oh * ow,
                    };
                }
            }
            f32_peak = f32_peak.max(layout.per_sample_len() * batch);
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                timings.push((si, step.kind(), ns, flops, step_int8, step_nm));
            }
        }
        if telemetry {
            let reg = capnn_telemetry::global();
            for (si, kind, ns, flops, int8, nm) in timings {
                reg.histogram(&format!("plan.step{si:02}_{kind}_ns"))
                    .record(ns);
                // Effective throughput gauges: ops/ns is numerically
                // G(FL)OP/s. Int8 and N:M GEMM steps report their
                // multiply–adds (over kept weights only) under their own
                // probes; f32 dense conv keeps its gflops gauge.
                if flops > 0 && ns > 0 {
                    let gops = flops as f64 / ns as f64;
                    match (int8, nm) {
                        (true, true) => reg
                            .gauge(&format!("plan.step{si:02}_{kind}_nm_int8_gops"))
                            .set(gops),
                        (true, false) => reg
                            .gauge(&format!("plan.step{si:02}_{kind}_int8_gops"))
                            .set(gops),
                        (false, true) => reg
                            .gauge(&format!("plan.step{si:02}_{kind}_nm_gflops"))
                            .set(gops),
                        (false, false) if kind == "conv" => reg
                            .gauge(&format!("plan.step{si:02}_conv_gflops"))
                            .set(gops),
                        _ => {}
                    }
                }
            }
            if quantize_ns > 0 {
                reg.histogram("plan.quantize_ns").record(quantize_ns);
            }
            reg.counter("plan.samples").add(batch as u64);
        }

        // Scatter packed outputs into original class coordinates.
        let mut outputs = Vec::with_capacity(batch);
        for b in 0..batch {
            let mut logits = Tensor::zeros(&[self.num_classes]);
            let lv = logits.as_mut_slice();
            match layout {
                Layout::Flat { len } => {
                    for (pi, &oi) in self.final_map.iter().enumerate() {
                        lv[oi] = cur[b * len + pi];
                    }
                }
                Layout::Chw { plane, .. } => {
                    for (pi, &oi) in self.final_map.iter().enumerate() {
                        let (c, p) = (pi / plane.max(1), pi % plane.max(1));
                        lv[oi] = cur[(c * batch + b) * plane + p];
                    }
                }
            }
            outputs.push(logits);
        }

        scratch.a = cur;
        scratch.b = nxt;
        scratch.cols = cols;
        scratch.qa = qa;
        scratch.qcols = qcols;
        scratch.qcols16 = qcols16;
        scratch.a_scales = a_scales;
        scratch.c_scales = c_scales;
        scratch.note_use(f32_peak, cols_peak, i8_peak, scale_peak);
        Ok(outputs)
    }
}

/// On-disk twin of [`CompiledPlan`]: the kernel table stored by value. A
/// persisted plan is self-contained — `Arc` sharing is an in-memory
/// property re-established by compiling through a [`PanelPool`], not an
/// on-disk one — so [`crate::io`] envelopes this struct rather than the
/// live plan.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct PlanWire {
    steps: Vec<PlanStep>,
    kernels: Vec<Kernel>,
    input_dims: Vec<usize>,
    final_map: Vec<usize>,
    num_classes: usize,
    per_sample_macs: u64,
    packed_params: usize,
    precision: Precision,
    sparsity: Sparsity,
}

impl CompiledPlan {
    /// The plan's serializable twin (kernels copied out of their `Arc`s).
    pub(crate) fn to_wire(&self) -> PlanWire {
        PlanWire {
            steps: self.steps.clone(),
            kernels: self.kernels.iter().map(|k| (**k).clone()).collect(),
            input_dims: self.input_dims.clone(),
            final_map: self.final_map.clone(),
            num_classes: self.num_classes,
            per_sample_macs: self.per_sample_macs,
            packed_params: self.packed_params,
            precision: self.precision,
            sparsity: self.sparsity,
        }
    }

    /// Rebuilds a plan from its wire twin, validating that every GEMM
    /// step references an existing kernel-table entry (a malformed
    /// artifact fails here instead of panicking at serve time).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] on a dangling kernel reference.
    pub(crate) fn from_wire(wire: PlanWire) -> Result<Self, NnError> {
        for (si, step) in wire.steps.iter().enumerate() {
            if let Some(ki) = step.kernel_index() {
                if ki >= wire.kernels.len() {
                    return Err(NnError::Config(format!(
                        "plan step {si} references kernel {ki}, table has {}",
                        wire.kernels.len()
                    )));
                }
            }
        }
        Ok(Self {
            steps: wire.steps,
            kernels: wire.kernels.into_iter().map(Arc::new).collect(),
            input_dims: wire.input_dims,
            final_map: wire.final_map,
            num_classes: wire.num_classes,
            per_sample_macs: wire.per_sample_macs,
            packed_params: wire.packed_params,
            precision: wire.precision,
            sparsity: wire.sparsity,
        })
    }
}

/// Resolves a layer's mask flags into kept unit indices. `None` flags
/// (masks built with `from_flags` that skip a layer) mean all kept.
fn kept_units(flags: Option<&[bool]>, units: usize, layer: usize) -> Result<Vec<usize>, NnError> {
    match flags {
        Some(f) => {
            if f.len() != units {
                return Err(NnError::Config(format!(
                    "mask has {} flags for layer {layer} with {units} units",
                    f.len()
                )));
            }
            Ok((0..units).filter(|&u| f[u]).collect())
        }
        None => Ok((0..units).collect()),
    }
}

/// Clears and zero-fills `v` to exactly `n` elements (no allocation once
/// capacity suffices).
fn grow<T: Copy + Default>(v: &mut Vec<T>, n: usize) {
    v.clear();
    v.resize(n, T::default());
}

/// Quantizes a sample-major flat activation (`batch × len`) into `qa`,
/// one dynamic symmetric scale per sample, returning the scales in
/// `scales[..batch]`.
fn quantize_flat_per_sample(
    src: &[f32],
    batch: usize,
    len: usize,
    qa: &mut [i8],
    scales: &mut [f32],
) {
    for b in 0..batch {
        scales[b] = capnn_tensor::quantize_slice_i8(
            &src[b * len..(b + 1) * len],
            &mut qa[b * len..(b + 1) * len],
        );
    }
}

/// Quantizes a channel-major batched CHW activation (element `(b, c, p)`
/// at `(c·batch + b)·plane + p`) into `qa` in the same layout, one
/// dynamic symmetric scale per sample. Two passes over each sample's
/// strided planes: max-abs, then quantize.
fn quantize_chw_per_sample(
    src: &[f32],
    batch: usize,
    channels: usize,
    plane: usize,
    qa: &mut [i8],
    scales: &mut [f32],
) {
    for (b, scale) in scales.iter_mut().enumerate().take(batch) {
        let mut m = 0.0f32;
        for c in 0..channels {
            let base = (c * batch + b) * plane;
            m = m.max(max_abs(&src[base..base + plane]));
        }
        *scale = i8_scale(m);
        let inv = i8_inv_scale(m);
        for c in 0..channels {
            let base = (c * batch + b) * plane;
            for p in 0..plane {
                qa[base + p] = quantize_i8(src[base + p], inv);
            }
        }
    }
}

/// Applies `pool` to each of `planes` contiguous input planes, writing
/// the corresponding output planes (channel-major batched: plane index is
/// `c·batch + b`).
fn pool_planes<F>(
    cur: &[f32],
    nxt: &mut Vec<f32>,
    planes: usize,
    (h, w): (usize, usize),
    (oh, ow): (usize, usize),
    pool: F,
) where
    F: Fn(&[f32], &mut [f32]),
{
    let in_plane = h * w;
    let oplane = oh * ow;
    grow(nxt, planes * oplane);
    for cb in 0..planes {
        pool(
            &cur[cb * in_plane..(cb + 1) * in_plane],
            &mut nxt[cb * oplane..(cb + 1) * oplane],
        );
    }
}

/// Max-pools one `h×w` plane; identical semantics to
/// [`capnn_tensor::max_pool2d`] (−∞ init, strict `>` so the first maximum
/// wins — max is order-independent in value anyway).
fn max_pool_plane(
    src: &[f32],
    h: usize,
    w: usize,
    spec: &PoolSpec,
    dst: &mut [f32],
    oh: usize,
    ow: usize,
) {
    let _ = h;
    for oy in 0..oh {
        for ox in 0..ow {
            let mut best = f32::NEG_INFINITY;
            for ky in 0..spec.window {
                let iy = oy * spec.stride + ky;
                for kx in 0..spec.window {
                    let ix = ox * spec.stride + kx;
                    let v = src[iy * w + ix];
                    if v > best {
                        best = v;
                    }
                }
            }
            dst[oy * ow + ox] = best;
        }
    }
}

/// Average-pools one `h×w` plane; accumulation order (ky, kx ascending,
/// then `· 1/window²`) matches the layer's `avg_pool2d` exactly.
fn avg_pool_plane(
    src: &[f32],
    h: usize,
    w: usize,
    spec: &PoolSpec,
    dst: &mut [f32],
    oh: usize,
    ow: usize,
) {
    let _ = h;
    let inv = 1.0 / (spec.window * spec.window) as f32;
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0;
            for ky in 0..spec.window {
                let iy = oy * spec.stride + ky;
                for kx in 0..spec.window {
                    let ix = ox * spec.stride + kx;
                    acc += src[iy * w + ix];
                }
            }
            dst[oy * ow + ox] = acc * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use capnn_tensor::XorShiftRng;

    fn small_cnn() -> Network {
        NetworkBuilder::cnn(&[1, 4, 4], &[(4, 1), (6, 1)], &[10], 3, 99)
            .build()
            .unwrap()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (&x, &y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn all_kept_plan_matches_plain_forward() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let plan = net.compile(&mask).unwrap();
        let mut rng = XorShiftRng::new(3);
        for _ in 0..4 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let plain = net.forward_impl(&x).unwrap();
            let planned = plan.forward(&x).unwrap();
            assert_close(planned.as_slice(), plain.as_slice());
        }
    }

    #[test]
    fn pruned_plan_matches_reference() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(5);
        let mut mask = PruneMask::all_kept(&net);
        let prunable = net.prunable_layers();
        mask.prune(prunable[0], 2).unwrap();
        mask.prune(prunable[1], 1).unwrap();
        mask.prune(prunable[1], 4).unwrap();
        mask.prune(prunable[2], 0).unwrap();
        mask.prune(prunable[2], 7).unwrap();
        let plan = net.compile(&mask).unwrap();
        assert!(plan.packed_param_count() < net.param_count());
        for _ in 0..6 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
            let planned = plan.forward(&x).unwrap();
            assert_close(planned.as_slice(), reference.as_slice());
            assert_eq!(planned.argmax(), reference.argmax());
        }
    }

    #[test]
    fn batched_forward_matches_per_sample() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(7);
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[1], 3).unwrap();
        let plan = net.compile(&mask).unwrap();
        let inputs: Vec<Tensor> = (0..9)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let batched = plan.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        let mut scratch = PlanScratch::new();
        for (x, y) in inputs.iter().zip(&batched) {
            let single = plan.forward_with_scratch(x, &mut scratch).unwrap();
            assert_eq!(single.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn fully_pruned_layer_compiles_and_yields_bias_downstream() {
        let net = NetworkBuilder::mlp(&[3, 5, 2], 11).build().unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.set_layer(0, vec![false; 5]).unwrap();
        // compact() rejects this; the plan supports it
        assert!(net.compact(&mask).is_err());
        let plan = net.compile(&mask).unwrap();
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9], &[3]).unwrap();
        let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
        let planned = plan.forward(&x).unwrap();
        assert_eq!(planned.as_slice(), reference.as_slice());
    }

    #[test]
    fn pruned_output_classes_stay_zero_in_original_coordinates() {
        let net = NetworkBuilder::mlp(&[4, 6, 3], 13).build().unwrap();
        let mut mask = PruneMask::all_kept(&net);
        let out_layer = *net.prunable_layers().last().unwrap();
        mask.prune(out_layer, 1).unwrap();
        let plan = net.compile(&mask).unwrap();
        assert_eq!(plan.num_classes(), 3);
        let x = Tensor::ones(&[4]);
        let y = plan.forward(&x).unwrap();
        assert_eq!(y.len(), 3);
        assert_eq!(y.as_slice()[1], 0.0);
        let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
        assert_close(y.as_slice(), reference.as_slice());
    }

    #[test]
    fn rejects_bad_masks_and_inputs() {
        let net = small_cnn();
        // wrong span
        let other = NetworkBuilder::mlp(&[3, 4, 2], 1).build().unwrap();
        let short_mask = PruneMask::all_kept(&other);
        assert!(net.compile(&short_mask).is_err());
        // flags on a non-prunable layer
        let flags: Vec<Option<Vec<bool>>> = (0..net.len())
            .map(|i| {
                if matches!(net.layers()[i], Layer::Relu) {
                    Some(vec![true; 1])
                } else {
                    None
                }
            })
            .collect();
        assert!(net.compile(&PruneMask::from_flags(flags)).is_err());
        // wrong input shape at run time
        let plan = net.compile(&PruneMask::all_kept(&net)).unwrap();
        assert!(plan.forward(&Tensor::ones(&[2, 4, 4])).is_err());
    }

    #[test]
    fn scratch_reuse_is_stable_across_batch_sizes() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let plan = net.compile(&mask).unwrap();
        let mut rng = XorShiftRng::new(17);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let mut scratch = PlanScratch::new();
        let big = plan
            .forward_batch_with_scratch(&inputs, &mut scratch)
            .unwrap();
        // shrink then regrow through the same scratch
        let small = plan
            .forward_batch_with_scratch(&inputs[..2], &mut scratch)
            .unwrap();
        let big2 = plan
            .forward_batch_with_scratch(&inputs, &mut scratch)
            .unwrap();
        for (a, b) in big.iter().zip(&big2) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        for (a, b) in big.iter().take(2).zip(&small) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let net = NetworkBuilder::mlp(&[3, 4, 2], 1).build().unwrap();
        let plan = net.compile(&PruneMask::all_kept(&net)).unwrap();
        assert!(plan.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn int8_plan_agrees_with_f32_plan() {
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[1], 3).unwrap();
        let f32_plan = net.compile(&mask).unwrap();
        let int8_plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        assert_eq!(int8_plan.precision(), Precision::Int8);
        assert_eq!(f32_plan.precision(), Precision::F32);
        let mut rng = XorShiftRng::new(23);
        let mut agree = 0usize;
        const N: usize = 64;
        for _ in 0..N {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let yf = f32_plan.forward(&x).unwrap();
            let yq = int8_plan.forward(&x).unwrap();
            // logits stay close in absolute terms...
            let scale = yf.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for (&a, &b) in yf.as_slice().iter().zip(yq.as_slice()) {
                assert!(
                    (a - b).abs() <= 0.25 * scale + 1e-2,
                    "logit drift too large: {a} vs {b} (scale {scale})"
                );
            }
            // ...and the predicted class almost always matches
            if yf.argmax() == yq.argmax() {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= N * 9,
            "argmax agreement {agree}/{N} below 90%"
        );
    }

    #[test]
    fn int8_batched_forward_bitwise_matches_per_sample() {
        // i32 accumulation is exact and activation scales are
        // per-sample, so the int8 path promises *bitwise* batch
        // invariance — stronger than the f32 path's sign-of-zero caveat.
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[0], 1).unwrap();
        let plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        let mut rng = XorShiftRng::new(29);
        let inputs: Vec<Tensor> = (0..9)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let batched = plan.forward_batch(&inputs).unwrap();
        let mut scratch = PlanScratch::new();
        for (x, y) in inputs.iter().zip(&batched) {
            let single = plan.forward_with_scratch(x, &mut scratch).unwrap();
            assert_eq!(single.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn int8_plan_survives_io_roundtrip() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        let json = crate::io::plan_to_json(&plan).unwrap();
        let back = crate::io::plan_from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.precision(), Precision::Int8);
        let x = Tensor::ones(&[1, 4, 4]);
        assert_eq!(
            plan.forward(&x).unwrap().as_slice(),
            back.forward(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn nm_plan_agrees_with_dense_plan() {
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[1], 2).unwrap();
        let dense = net.compile(&mask).unwrap();
        let nm =
            CompiledPlan::compile_sparse(&net, &mask, Precision::F32, Sparsity::NM(2, 4), None)
                .unwrap();
        assert_eq!(dense.sparsity(), Sparsity::Dense);
        assert_eq!(nm.sparsity(), Sparsity::NM(2, 4));
        assert_eq!(nm.sparsity().name(), "nm2_4");
        // compressed kernels cut MACs and stored parameters
        assert!(nm.per_sample_macs() < dense.per_sample_macs());
        assert!(nm.packed_param_count() < dense.packed_param_count());
        let mut rng = XorShiftRng::new(41);
        let mut agree = 0usize;
        const N: usize = 64;
        for _ in 0..N {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            if dense.forward(&x).unwrap().argmax() == nm.forward(&x).unwrap().argmax() {
                agree += 1;
            }
        }
        // Ungated 2:4 on a tiny random net still predicts mostly the
        // same class; the profile-side gate enforces the tight floor.
        assert!(
            agree * 10 >= N * 7,
            "argmax agreement {agree}/{N} below 70%"
        );
    }

    #[test]
    fn nm_plan_batched_forward_bitwise_matches_per_sample() {
        for precision in [Precision::F32, Precision::Int8] {
            let net = small_cnn();
            let mut mask = PruneMask::all_kept(&net);
            mask.prune(net.prunable_layers()[0], 1).unwrap();
            let plan =
                CompiledPlan::compile_sparse(&net, &mask, precision, Sparsity::NM(2, 4), None)
                    .unwrap();
            let mut rng = XorShiftRng::new(43);
            let inputs: Vec<Tensor> = (0..9)
                .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
                .collect();
            let mut scratch = PlanScratch::new();
            let batched = plan.run_chunk(&inputs, &mut scratch, 1).unwrap();
            for (x, y) in inputs.iter().zip(&batched) {
                let single = plan.forward_with_scratch(x, &mut scratch).unwrap();
                assert_eq!(single.as_slice(), y.as_slice());
            }
        }
    }

    #[test]
    fn nm_plan_scratch_reuse_across_batch_sizes_is_bitwise() {
        // The sparse path's scratch story (qcols16 widening included)
        // must be stateless: interleaving chunk sizes through one reused
        // scratch gives the same bits as a fresh scratch every time.
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let plan =
            CompiledPlan::compile_sparse(&net, &mask, Precision::Int8, Sparsity::NM(4, 8), None)
                .unwrap();
        let mut rng = XorShiftRng::new(47);
        let inputs: Vec<Tensor> = (0..13)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let mut reused = PlanScratch::new();
        for chunk in [7usize, 1, 5, 13, 2] {
            let got = plan.run_chunk(&inputs[..chunk], &mut reused, 1).unwrap();
            let want = plan
                .run_chunk(&inputs[..chunk], &mut PlanScratch::new(), 1)
                .unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.as_slice(), w.as_slice());
            }
        }
    }

    #[test]
    fn nm_kernels_pool_separately_from_dense() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let pool = PanelPool::new();
        let dense = CompiledPlan::compile_shared(&net, &mask, Precision::F32, Some(&pool)).unwrap();
        let nm_a = CompiledPlan::compile_sparse(
            &net,
            &mask,
            Precision::F32,
            Sparsity::NM(2, 4),
            Some(&pool),
        )
        .unwrap();
        let nm_b = CompiledPlan::compile_sparse(
            &net,
            &mask,
            Precision::F32,
            Sparsity::NM(2, 4),
            Some(&pool),
        )
        .unwrap();
        // same tier aliases, different tiers never do
        for (ka, kb) in nm_a.kernels.iter().zip(&nm_b.kernels) {
            assert!(Arc::ptr_eq(ka, kb));
        }
        for (kd, kn) in dense.kernels.iter().zip(&nm_a.kernels) {
            assert!(!Arc::ptr_eq(kd, kn));
        }
        // N:M kernels carry compressed twins and count them in memory
        assert!(nm_a.kernels.iter().all(|k| k.nm.is_some()));
        assert!(nm_a.kernels.iter().all(|k| k.heap_bytes() > 0));
    }

    #[test]
    fn degenerate_nm_patterns_rejected() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        for bad in [Sparsity::NM(0, 4), Sparsity::NM(4, 4), Sparsity::NM(5, 4)] {
            assert!(
                CompiledPlan::compile_sparse(&net, &mask, Precision::F32, bad, None).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn per_layer_sparsity_span_checked() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let short = vec![Sparsity::Dense; net.len() - 1];
        assert!(
            CompiledPlan::compile_sparse_layers(&net, &mask, Precision::F32, &short, None).is_err()
        );
        // hybrid per-layer compile works and labels with the non-dense tier
        let mut layers = vec![Sparsity::Dense; net.len()];
        layers[0] = Sparsity::NM(2, 4);
        let plan = CompiledPlan::compile_sparse_layers(&net, &mask, Precision::F32, &layers, None)
            .unwrap();
        assert_eq!(plan.sparsity(), Sparsity::NM(2, 4));
        // only layer 0's kernel is compressed
        assert!(plan.kernels[0].nm.is_some());
        assert!(plan.kernels[1..].iter().all(|k| k.nm.is_none()));
    }

    #[test]
    fn plan_scratch_shrinks_after_oversized_batch() {
        // Mirrors the ConvScratch shrink test on the dense path: one huge
        // warmup batch pins large activation (and int8) buffers, then a
        // review window of batch-1 chunks releases them.
        let net = NetworkBuilder::mlp(&[32, 48, 10], 41).build().unwrap();
        let mask = PruneMask::all_kept(&net);
        let plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        let mut rng = XorShiftRng::new(31);
        let big: Vec<Tensor> = (0..64)
            .map(|_| Tensor::uniform(&[32], -1.0, 1.0, &mut rng))
            .collect();
        let mut scratch = PlanScratch::new();
        plan.run_chunk(&big, &mut scratch, 1).unwrap();
        let caps = scratch.capacities();
        // the big buffer may end in either ping-pong slot after the swaps
        assert!(
            caps[0].max(caps[1]) >= 64 * 48,
            "warmup did not grow f32 activations: {caps:?}"
        );
        assert!(caps[3] >= 64 * 32, "warmup did not grow qa: {caps:?}");
        let x = Tensor::uniform(&[32], -1.0, 1.0, &mut rng);
        let want = plan.forward(&x).unwrap();
        // the first review window still contains the big chunk; run two
        for _ in 0..2 * SHRINK_WINDOW {
            let got = plan
                .run_chunk(std::slice::from_ref(&x), &mut scratch, 1)
                .unwrap();
            assert_eq!(got[0].as_slice(), want.as_slice());
        }
        let f32_need = 48; // largest per-sample activation at batch 1
        let qa_need = 32;
        let caps = scratch.capacities();
        assert!(
            caps[0] <= f32_need * SHRINK_FACTOR && caps[1] <= f32_need * SHRINK_FACTOR,
            "f32 activations not released: {caps:?}"
        );
        assert!(
            caps[3] <= qa_need * SHRINK_FACTOR,
            "qa not released: {caps:?}"
        );
        // results stay correct after the shrink
        let got = plan
            .run_chunk(std::slice::from_ref(&x), &mut scratch, 1)
            .unwrap();
        assert_eq!(got[0].as_slice(), want.as_slice());
    }

    #[test]
    fn plan_scratch_shrink_to_caps_buffers_immediately() {
        let net = NetworkBuilder::mlp(&[16, 24, 8], 43).build().unwrap();
        let plan =
            CompiledPlan::compile_with_precision(&net, &PruneMask::all_kept(&net), Precision::Int8)
                .unwrap();
        let x = Tensor::ones(&[16]);
        let mut scratch = PlanScratch::new();
        let want = plan.forward_with_scratch(&x, &mut scratch).unwrap();
        assert!(scratch.capacities().iter().any(|&c| c > 0));
        scratch.shrink_to(0);
        assert_eq!(scratch.capacities(), [0; 5]);
        // workspace regrows transparently
        let again = plan.forward_with_scratch(&x, &mut scratch).unwrap();
        assert_eq!(again.as_slice(), want.as_slice());
    }

    /// The plan's fixed (non-kernel) footprint, re-derived field by field.
    fn fixed_bytes(plan: &CompiledPlan) -> usize {
        std::mem::size_of::<CompiledPlan>()
            + plan.steps.capacity() * std::mem::size_of::<PlanStep>()
            + plan.kernels.capacity() * std::mem::size_of::<Arc<Kernel>>()
            + plan.input_dims.capacity() * std::mem::size_of::<usize>()
            + plan.final_map.capacity() * std::mem::size_of::<usize>()
    }

    #[test]
    fn resident_bytes_pins_to_independently_computed_size() {
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[1], 3).unwrap();
        // int8 plan: covers panels + bias + quantized twin accounting
        let plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        // independent walk: panels/bias are f32 tensors, the int8 twin
        // stores one byte per panel element plus f32 per-channel scales
        let mut expected = fixed_bytes(&plan);
        for kernel in &plan.kernels {
            assert_eq!(
                Arc::strong_count(kernel),
                1,
                "unpooled kernels are unshared"
            );
            expected += std::mem::size_of::<Kernel>();
            expected += (kernel.panels.len() + kernel.bias.len()) * 4;
            let q = kernel.quant.as_ref().unwrap();
            expected += q.data.len() + q.scales.len() * 4;
        }
        assert_eq!(plan.resident_bytes(), expected);
        // and the panels dominate: the packed f32 panels alone are a
        // lower bound the total must exceed
        let panel_f32: usize = plan.kernels.iter().map(|k| k.panels.len() * 4).sum();
        assert!(plan.resident_bytes() > panel_f32);
    }

    #[test]
    fn pooled_plans_share_kernels_and_split_resident_bytes() {
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[0], 2).unwrap();
        let pool = PanelPool::new();
        let solo = CompiledPlan::compile_with_precision(&net, &mask, Precision::F32).unwrap();
        let a = CompiledPlan::compile_shared(&net, &mask, Precision::F32, Some(&pool)).unwrap();
        let b = CompiledPlan::compile_shared(&net, &mask, Precision::F32, Some(&pool)).unwrap();
        // identical masks through one pool alias every kernel
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
            assert!(Arc::ptr_eq(ka, kb));
        }
        assert_eq!(pool.live_kernels(), a.kernels.len());
        // outputs are bitwise identical to the unpooled compile
        let x = Tensor::ones(&[1, 4, 4]);
        assert_eq!(
            a.forward(&x).unwrap().as_slice(),
            solo.forward(&x).unwrap().as_slice()
        );
        // strong_count-aware accounting: the pair's kernel bytes sum to
        // one unshared plan's kernel bytes (the pool's Weak handles add
        // no strong count)
        let kernel_bytes =
            |p: &CompiledPlan| p.resident_bytes().saturating_sub(fixed_bytes(p)) as i64;
        let pair = kernel_bytes(&a) + kernel_bytes(&b);
        assert!(
            (pair - kernel_bytes(&solo)).abs() <= a.kernels.len() as i64,
            "shared pair accounts {pair} bytes vs solo {}",
            kernel_bytes(&solo)
        );
        // dropping one co-owner returns the full bytes to the survivor
        drop(b);
        assert_eq!(kernel_bytes(&a), kernel_bytes(&solo));
        // a different mask through the pool interns new kernels for the
        // layers whose kept sets changed, but reuses downstream matches
        let mut other = PruneMask::all_kept(&net);
        other.prune(net.prunable_layers()[0], 3).unwrap();
        let c = CompiledPlan::compile_shared(&net, &other, Precision::F32, Some(&pool)).unwrap();
        assert!(!Arc::ptr_eq(&a.kernels[0], &c.kernels[0]));
    }

    #[test]
    fn panel_pool_does_not_keep_dead_kernels_alive() {
        let net = small_cnn();
        let mask = PruneMask::all_kept(&net);
        let pool = PanelPool::new();
        let plan = CompiledPlan::compile_shared(&net, &mask, Precision::F32, Some(&pool)).unwrap();
        let n = plan.kernels.len();
        assert_eq!(pool.live_kernels(), n);
        drop(plan);
        // Weak handles: the pool holds nothing alive
        assert_eq!(pool.live_kernels(), 0);
        // a fresh compile re-interns (miss, not a dangling upgrade)
        let again = CompiledPlan::compile_shared(&net, &mask, Precision::F32, Some(&pool)).unwrap();
        assert_eq!(pool.live_kernels(), again.kernels.len());
    }

    #[test]
    fn per_sample_macs_shrink_with_pruning() {
        let net = small_cnn();
        let dense_plan = net.compile(&PruneMask::all_kept(&net)).unwrap();
        let mut mask = PruneMask::all_kept(&net);
        for &l in &net.prunable_layers()[..3] {
            let units = net.layers()[l].unit_count().unwrap();
            for u in 0..units / 2 {
                mask.prune(l, u).unwrap();
            }
        }
        let pruned_plan = net.compile(&mask).unwrap();
        assert!(pruned_plan.per_sample_macs() < dense_plan.per_sample_macs());
        assert!(pruned_plan.packed_param_count() < dense_plan.packed_param_count());
    }
}
