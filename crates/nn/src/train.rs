//! Mini-batch SGD trainer with momentum and weight decay.
//!
//! This is the substrate that produces the "commodity trained model" the
//! paper's cloud holds; CAP'NN itself never retrains.

use crate::error::NnError;
use crate::layer::{Layer, LayerGrads};
use crate::loss::cross_entropy_loss;
use crate::network::Network;
use capnn_tensor::{Tensor, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay applied to weights (not biases).
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Train-time dropout probability applied to the ReLU outputs of hidden
    /// dense layers (VGG-style classifier-head regularization). 0 disables
    /// dropout; inference is never affected.
    pub dropout: f32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 16,
            epochs: 5,
            lr_decay: 0.85,
            dropout: 0.0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training top-1 accuracy per epoch.
    pub epoch_accuracies: Vec<f32>,
}

impl TrainReport {
    /// Final (last-epoch) training accuracy, or 0 if no epochs ran.
    pub fn final_accuracy(&self) -> f32 {
        self.epoch_accuracies.last().copied().unwrap_or(0.0)
    }

    /// Final (last-epoch) mean loss, or +inf if no epochs ran.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::INFINITY)
    }
}

/// Mini-batch SGD trainer with momentum.
///
/// # Examples
///
/// ```
/// use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
/// use capnn_tensor::Tensor;
///
/// let mut net = NetworkBuilder::mlp(&[2, 8, 2], 3).build().unwrap();
/// let samples = vec![
///     (Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap(), 0),
///     (Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap(), 1),
/// ];
/// let cfg = TrainerConfig { epochs: 20, ..TrainerConfig::default() };
/// let mut trainer = Trainer::new(cfg, 42);
/// let report = trainer.fit(&mut net, &samples).unwrap();
/// assert!(report.final_accuracy() > 0.9);
/// ```
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    rng: XorShiftRng,
    /// Momentum buffers per layer (dw, db), lazily sized to the network.
    velocity: Vec<Option<LayerGrads>>,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters and shuffle seed.
    pub fn new(config: TrainerConfig, seed: u64) -> Self {
        Self {
            config,
            rng: XorShiftRng::new(seed),
            velocity: Vec::new(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `net` on `(input, label)` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if any sample's shape does not match the network or
    /// a label is out of range.
    pub fn fit(
        &mut self,
        net: &mut Network,
        samples: &[(Tensor, usize)],
    ) -> Result<TrainReport, NnError> {
        if samples.is_empty() {
            return Err(NnError::Config("cannot train on an empty dataset".into()));
        }
        if !(0.0..1.0).contains(&self.config.dropout) {
            return Err(NnError::Config(format!(
                "dropout must be in [0, 1), got {}",
                self.config.dropout
            )));
        }
        let num_classes = net.num_classes();
        if let Some((_, bad)) = samples.iter().find(|(_, l)| *l >= num_classes) {
            return Err(NnError::Config(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        self.ensure_velocity(net);
        let mut lr = self.config.learning_rate;
        let mut report = TrainReport {
            epoch_losses: Vec::with_capacity(self.config.epochs),
            epoch_accuracies: Vec::with_capacity(self.config.epochs),
        };
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..self.config.epochs {
            self.rng.shuffle(&mut order);
            let mut total_loss = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                let mut acc: Vec<Option<LayerGrads>> = vec![None; net.len()];
                for &si in batch {
                    let (x, label) = &samples[si];
                    let (trace, drop_masks) = self.forward_with_dropout(net, x)?;
                    let logits = trace.last().expect("trace non-empty");
                    if logits.argmax() == Some(*label) {
                        correct += 1;
                    }
                    let (loss, mut grad) = cross_entropy_loss(logits, *label);
                    total_loss += loss;
                    for li in (0..net.len()).rev() {
                        if let Some(mask) = &drop_masks[li] {
                            for (g, &m) in grad.as_mut_slice().iter_mut().zip(mask) {
                                *g *= m;
                            }
                        }
                        let (dx, g) = net.layers()[li].backward(&trace[li], &grad)?;
                        if let Some(g) = g {
                            match &mut acc[li] {
                                Some(a) => {
                                    a.dw.axpy_in_place(1.0, &g.dw)?;
                                    a.db.axpy_in_place(1.0, &g.db)?;
                                }
                                slot @ None => *slot = Some(g),
                            }
                        }
                        grad = dx;
                    }
                }
                self.apply_update(net, &acc, batch.len(), lr)?;
            }
            report.epoch_losses.push(total_loss / samples.len() as f32);
            report
                .epoch_accuracies
                .push(correct as f32 / samples.len() as f32);
            lr *= self.config.lr_decay;
        }
        Ok(report)
    }

    /// Forward pass that applies inverted dropout to the ReLU outputs of
    /// hidden dense layers. Returns the layer-boundary trace (with dropped
    /// activations, as downstream layers saw them) and the per-layer scale
    /// masks needed to route gradients identically in the backward pass.
    fn forward_with_dropout(
        &mut self,
        net: &Network,
        x: &Tensor,
    ) -> Result<(Vec<Tensor>, DropoutMasks), NnError> {
        let p = self.config.dropout;
        let mut acts = Vec::with_capacity(net.len() + 1);
        acts.push(x.clone());
        let mut masks: Vec<Option<Vec<f32>>> = vec![None; net.len()];
        for (i, layer) in net.layers().iter().enumerate() {
            let mut out = layer.forward(acts.last().expect("non-empty"))?;
            let follows_dense = i > 0 && matches!(net.layers()[i - 1], Layer::Dense(_));
            // never drop the logits: only hidden relu-after-dense outputs
            if p > 0.0 && matches!(layer, Layer::Relu) && follows_dense && i + 1 < net.len() {
                let scale = 1.0 / (1.0 - p);
                let mask: Vec<f32> = (0..out.len())
                    .map(|_| {
                        if self.rng.next_uniform() < p {
                            0.0
                        } else {
                            scale
                        }
                    })
                    .collect();
                for (v, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
                    *v *= m;
                }
                masks[i] = Some(mask);
            }
            acts.push(out);
        }
        Ok((acts, masks))
    }

    fn ensure_velocity(&mut self, net: &Network) {
        if self.velocity.len() == net.len() {
            return;
        }
        self.velocity = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => Some(LayerGrads {
                    dw: Tensor::zeros(d.weights().dims()),
                    db: Tensor::zeros(d.bias().dims()),
                }),
                Layer::Conv2d(c) => Some(LayerGrads {
                    dw: Tensor::zeros(c.weights().dims()),
                    db: Tensor::zeros(c.bias().dims()),
                }),
                _ => None,
            })
            .collect();
    }

    fn apply_update(
        &mut self,
        net: &mut Network,
        grads: &[Option<LayerGrads>],
        batch_len: usize,
        lr: f32,
    ) -> Result<(), NnError> {
        let scale = 1.0 / batch_len.max(1) as f32;
        let momentum = self.config.momentum;
        let wd = self.config.weight_decay;
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            let (Some(g), Some(v)) = (grads[li].as_ref(), self.velocity[li].as_mut()) else {
                continue;
            };
            let (w, b) = match layer {
                Layer::Dense(d) => d.params_mut(),
                Layer::Conv2d(c) => c.params_mut(),
                _ => continue,
            };
            // v = momentum * v + grad/batch + wd * w; w -= lr * v
            v.dw.map_in_place(|x| x * momentum);
            v.dw.axpy_in_place(scale, &g.dw)?;
            v.dw.axpy_in_place(wd, w)?;
            w.axpy_in_place(-lr, &v.dw)?;
            v.db.map_in_place(|x| x * momentum);
            v.db.axpy_in_place(scale, &g.db)?;
            b.axpy_in_place(-lr, &v.db)?;
        }
        Ok(())
    }
}

/// Per-layer dropout scale masks: `Some(scales)` only for layers whose
/// output was dropped during the current training forward pass.
type DropoutMasks = Vec<Option<Vec<f32>>>;

/// Top-1 accuracy of `net` on labelled samples.
///
/// # Errors
///
/// Returns an error if a sample's shape does not match the network.
pub fn evaluate_accuracy(net: &Network, samples: &[(Tensor, usize)]) -> Result<f32, NnError> {
    if samples.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (x, label) in samples {
        if net.predict(x)? == *label {
            correct += 1;
        }
    }
    Ok(correct as f32 / samples.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn two_blob_dataset(n_per: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = XorShiftRng::new(seed);
        let mut samples = Vec::new();
        for i in 0..n_per {
            let _ = i;
            let x0 = Tensor::from_vec(
                vec![
                    1.0 + 0.3 * rng.next_gaussian(),
                    -1.0 + 0.3 * rng.next_gaussian(),
                ],
                &[2],
            )
            .unwrap();
            samples.push((x0, 0));
            let x1 = Tensor::from_vec(
                vec![
                    -1.0 + 0.3 * rng.next_gaussian(),
                    1.0 + 0.3 * rng.next_gaussian(),
                ],
                &[2],
            )
            .unwrap();
            samples.push((x1, 1));
        }
        samples
    }

    #[test]
    fn mlp_learns_two_blobs() {
        let mut net = NetworkBuilder::mlp(&[2, 8, 2], 5).build().unwrap();
        let samples = two_blob_dataset(30, 9);
        let cfg = TrainerConfig {
            epochs: 15,
            ..TrainerConfig::default()
        };
        let report = Trainer::new(cfg, 1).fit(&mut net, &samples).unwrap();
        assert!(
            report.final_accuracy() > 0.95,
            "accuracy {}",
            report.final_accuracy()
        );
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn cnn_learns_simple_patterns() {
        // class 0: bright top-left quadrant; class 1: bright bottom-right
        let mut rng = XorShiftRng::new(3);
        let mut samples = Vec::new();
        for _ in 0..25 {
            let mut a = Tensor::zeros(&[1, 6, 6]);
            let mut b = Tensor::zeros(&[1, 6, 6]);
            for y in 0..3 {
                for x in 0..3 {
                    a.set(&[0, y, x], 1.0 + 0.2 * rng.next_gaussian()).unwrap();
                    b.set(&[0, y + 3, x + 3], 1.0 + 0.2 * rng.next_gaussian())
                        .unwrap();
                }
            }
            samples.push((a, 0));
            samples.push((b, 1));
        }
        let mut net = NetworkBuilder::cnn(&[1, 6, 6], &[(4, 1)], &[8], 2, 7)
            .build()
            .unwrap();
        let cfg = TrainerConfig {
            epochs: 8,
            learning_rate: 0.03,
            ..TrainerConfig::default()
        };
        let report = Trainer::new(cfg, 2).fit(&mut net, &samples).unwrap();
        assert!(
            report.final_accuracy() > 0.9,
            "accuracy {}",
            report.final_accuracy()
        );
    }

    #[test]
    fn training_rejects_bad_inputs() {
        let mut net = NetworkBuilder::mlp(&[2, 4, 2], 5).build().unwrap();
        let mut t = Trainer::new(TrainerConfig::default(), 1);
        assert!(t.fit(&mut net, &[]).is_err());
        let bad_label = vec![(Tensor::zeros(&[2]), 7usize)];
        assert!(t.fit(&mut net, &bad_label).is_err());
        let bad_shape = vec![(Tensor::zeros(&[3]), 0usize)];
        assert!(t.fit(&mut net, &bad_shape).is_err());
    }

    #[test]
    fn evaluate_accuracy_counts_correct() {
        let net = NetworkBuilder::mlp(&[2, 4, 2], 5).build().unwrap();
        let samples = two_blob_dataset(5, 1);
        let acc = evaluate_accuracy(&net, &samples).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(evaluate_accuracy(&net, &[]).unwrap(), 0.0);
    }

    #[test]
    fn dropout_still_learns_and_validates() {
        let mut net = NetworkBuilder::mlp(&[2, 12, 2], 5).build().unwrap();
        let samples = two_blob_dataset(30, 9);
        let cfg = TrainerConfig {
            epochs: 15,
            dropout: 0.3,
            ..TrainerConfig::default()
        };
        let report = Trainer::new(cfg, 1).fit(&mut net, &samples).unwrap();
        // evaluate WITHOUT dropout: inference path is unaffected
        let acc = evaluate_accuracy(&net, &samples).unwrap();
        assert!(acc > 0.9, "post-dropout accuracy {acc}");
        assert!(report.final_loss().is_finite());

        let bad = TrainerConfig {
            dropout: 1.0,
            ..TrainerConfig::default()
        };
        assert!(Trainer::new(bad, 1).fit(&mut net, &samples).is_err());
    }

    #[test]
    fn zero_dropout_matches_plain_training() {
        // dropout = 0.0 must not consume RNG or alter the computation
        let samples = two_blob_dataset(10, 3);
        let cfg = TrainerConfig {
            epochs: 3,
            ..TrainerConfig::default()
        };
        let mut a = NetworkBuilder::mlp(&[2, 6, 2], 4).build().unwrap();
        let mut b = a.clone();
        Trainer::new(cfg, 2).fit(&mut a, &samples).unwrap();
        Trainer::new(cfg, 2).fit(&mut b, &samples).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut net = NetworkBuilder::mlp(&[2, 6, 2], 8).build().unwrap();
        let samples = two_blob_dataset(20, 4);
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        let report = Trainer::new(cfg, 3).fit(&mut net, &samples).unwrap();
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }
}
