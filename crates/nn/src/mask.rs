//! Structured prune masks over a network's prunable units.
//!
//! A [`PruneMask`] records, for each layer of a network, which output units
//! (dense neurons / conv channels) are *kept*. Masks are applied at forward
//! time by zeroing pruned units' outputs — semantically identical to removing
//! the unit (its following ReLU emits 0 and its outgoing weights never
//! contribute) while leaving the stored model untouched. This is exactly the
//! "temporarily prune" operation Algorithms 1 and 2 of the paper iterate on.

use crate::error::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-layer keep/prune flags over a network's prunable units.
///
/// Index `i` corresponds to layer `i` of the associated
/// [`Network`](crate::Network); only prunable layers (dense/conv) have an
/// entry.
///
/// # Examples
///
/// ```
/// use capnn_nn::{NetworkBuilder, PruneMask};
///
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
/// let mut mask = PruneMask::all_kept(&net);
/// mask.prune(0, 3).unwrap(); // prune neuron 3 of the first dense layer
/// assert_eq!(mask.pruned_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PruneMask {
    /// `keep[layer]` is `Some(flags)` for prunable layers.
    keep: Vec<Option<Vec<bool>>>,
}

impl PruneMask {
    /// Creates a mask that keeps every unit of `net`.
    pub fn all_kept(net: &crate::Network) -> Self {
        let keep = net
            .layers()
            .iter()
            .map(|l| l.unit_count().map(|n| vec![true; n]))
            .collect();
        Self { keep }
    }

    /// Creates a mask from raw per-layer flags. Intended for (de)serialized
    /// masks; prefer [`PruneMask::all_kept`] plus edits.
    pub fn from_flags(keep: Vec<Option<Vec<bool>>>) -> Self {
        Self { keep }
    }

    /// Number of layers the mask spans.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// Whether the mask spans zero layers.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Keep-flags of layer `layer`, or `None` if that layer has no units.
    pub fn layer_flags(&self, layer: usize) -> Option<&[bool]> {
        self.keep.get(layer).and_then(|o| o.as_deref())
    }

    /// Marks unit `unit` of layer `layer` as pruned.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer is out of range, not prunable, or the
    /// unit index is out of bounds.
    pub fn prune(&mut self, layer: usize, unit: usize) -> Result<(), NnError> {
        self.set_kept(layer, unit, false)
    }

    /// Marks unit `unit` of layer `layer` as kept (undo a prune).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PruneMask::prune`].
    pub fn restore(&mut self, layer: usize, unit: usize) -> Result<(), NnError> {
        self.set_kept(layer, unit, true)
    }

    fn set_kept(&mut self, layer: usize, unit: usize, kept: bool) -> Result<(), NnError> {
        let len = self.keep.len();
        let flags = self
            .keep
            .get_mut(layer)
            .ok_or(NnError::LayerOutOfRange { index: layer, len })?
            .as_mut()
            .ok_or_else(|| NnError::Config(format!("layer {layer} has no prunable units")))?;
        let slot = flags.get_mut(unit).ok_or(NnError::Config(format!(
            "unit {unit} out of range for layer {layer}"
        )))?;
        *slot = kept;
        Ok(())
    }

    /// Replaces the flags of one layer wholesale.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer is out of range, not prunable, or
    /// `flags` has the wrong length.
    pub fn set_layer(&mut self, layer: usize, flags: Vec<bool>) -> Result<(), NnError> {
        let len = self.keep.len();
        let slot = self
            .keep
            .get_mut(layer)
            .ok_or(NnError::LayerOutOfRange { index: layer, len })?
            .as_mut()
            .ok_or_else(|| NnError::Config(format!("layer {layer} has no prunable units")))?;
        if slot.len() != flags.len() {
            return Err(NnError::Config(format!(
                "layer {layer} has {} units, got {} flags",
                slot.len(),
                flags.len()
            )));
        }
        *slot = flags;
        Ok(())
    }

    /// Whether unit `unit` of layer `layer` is kept. Units of non-prunable or
    /// out-of-range layers report `true` (they are never pruned).
    pub fn is_kept(&self, layer: usize, unit: usize) -> bool {
        match self.keep.get(layer).and_then(|o| o.as_ref()) {
            Some(flags) => flags.get(unit).copied().unwrap_or(true),
            None => true,
        }
    }

    /// Total number of pruned units across all layers.
    pub fn pruned_count(&self) -> usize {
        self.keep
            .iter()
            .flatten()
            .map(|flags| flags.iter().filter(|&&k| !k).count())
            .sum()
    }

    /// Number of kept units in layer `layer` (0 for non-prunable layers).
    pub fn kept_in_layer(&self, layer: usize) -> usize {
        self.keep
            .get(layer)
            .and_then(|o| o.as_ref())
            .map_or(0, |f| f.iter().filter(|&&k| k).count())
    }

    /// Intersection of prune decisions: a unit is pruned in the result only
    /// if it is pruned in *both* masks (i.e. kept if kept in either).
    ///
    /// This is the online CAP'NN-B combination rule: the prunable set for a
    /// class subset is the intersection of per-class prunable sets.
    ///
    /// # Errors
    ///
    /// Returns an error if the masks span different layer structures.
    pub fn intersect_pruned(&self, other: &Self) -> Result<Self, NnError> {
        if self.keep.len() != other.keep.len() {
            return Err(NnError::Config(format!(
                "mask length mismatch: {} vs {}",
                self.keep.len(),
                other.keep.len()
            )));
        }
        let keep = self
            .keep
            .iter()
            .zip(&other.keep)
            .map(|(a, b)| match (a, b) {
                (Some(fa), Some(fb)) if fa.len() == fb.len() => {
                    Ok(Some(fa.iter().zip(fb).map(|(&ka, &kb)| ka || kb).collect()))
                }
                (None, None) => Ok(None),
                _ => Err(NnError::Config("mask layer structure mismatch".into())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { keep })
    }

    /// Union of prune decisions: a unit is pruned if pruned in *either* mask.
    ///
    /// # Errors
    ///
    /// Returns an error if the masks span different layer structures.
    pub fn union_pruned(&self, other: &Self) -> Result<Self, NnError> {
        if self.keep.len() != other.keep.len() {
            return Err(NnError::Config(format!(
                "mask length mismatch: {} vs {}",
                self.keep.len(),
                other.keep.len()
            )));
        }
        let keep = self
            .keep
            .iter()
            .zip(&other.keep)
            .map(|(a, b)| match (a, b) {
                (Some(fa), Some(fb)) if fa.len() == fb.len() => {
                    Ok(Some(fa.iter().zip(fb).map(|(&ka, &kb)| ka && kb).collect()))
                }
                (None, None) => Ok(None),
                _ => Err(NnError::Config("mask layer structure mismatch".into())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { keep })
    }

    /// Whether this mask prunes a subset (not necessarily proper) of the
    /// units pruned by `other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        if self.keep.len() != other.keep.len() {
            return false;
        }
        self.keep
            .iter()
            .zip(&other.keep)
            .all(|(a, b)| match (a, b) {
                (Some(fa), Some(fb)) if fa.len() == fb.len() => {
                    // every unit we prune (ka == false) must be pruned by other
                    fa.iter().zip(fb).all(|(&ka, &kb)| ka || !kb)
                }
                (None, None) => true,
                _ => false,
            })
    }
}

impl fmt::Display for PruneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PruneMask(pruned={}", self.pruned_count())?;
        for (i, flags) in self.keep.iter().enumerate() {
            if let Some(flags) = flags {
                let pruned = flags.iter().filter(|&&k| !k).count();
                if pruned > 0 {
                    write!(f, ", L{i}:{pruned}/{}", flags.len())?;
                }
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn mask3() -> PruneMask {
        // Layers: Dense(8) Relu Dense(3) → entries at 0 and 2
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        PruneMask::all_kept(&net)
    }

    #[test]
    fn all_kept_has_no_pruned() {
        let m = mask3();
        assert_eq!(m.pruned_count(), 0);
        assert!(m.layer_flags(0).unwrap().iter().all(|&k| k));
        assert!(m.layer_flags(1).is_none()); // relu
    }

    #[test]
    fn prune_and_restore() {
        let mut m = mask3();
        m.prune(0, 2).unwrap();
        assert!(!m.is_kept(0, 2));
        assert_eq!(m.pruned_count(), 1);
        assert_eq!(m.kept_in_layer(0), 7);
        m.restore(0, 2).unwrap();
        assert_eq!(m.pruned_count(), 0);
    }

    #[test]
    fn prune_rejects_bad_targets() {
        let mut m = mask3();
        assert!(m.prune(1, 0).is_err()); // relu layer
        assert!(m.prune(9, 0).is_err()); // out of range
        assert!(m.prune(0, 100).is_err()); // unit out of range
    }

    #[test]
    fn set_layer_validates_length() {
        let mut m = mask3();
        assert!(m.set_layer(0, vec![false; 8]).is_ok());
        assert_eq!(m.kept_in_layer(0), 0);
        assert!(m.set_layer(0, vec![true; 7]).is_err());
        assert!(m.set_layer(1, vec![true; 8]).is_err());
    }

    #[test]
    fn intersect_keeps_if_either_keeps() {
        let mut a = mask3();
        let mut b = mask3();
        a.prune(0, 1).unwrap();
        a.prune(0, 2).unwrap();
        b.prune(0, 2).unwrap();
        b.prune(0, 3).unwrap();
        let i = a.intersect_pruned(&b).unwrap();
        assert!(i.is_kept(0, 1)); // only pruned by a
        assert!(!i.is_kept(0, 2)); // pruned by both
        assert!(i.is_kept(0, 3)); // only pruned by b
        assert_eq!(i.pruned_count(), 1);
    }

    #[test]
    fn union_prunes_if_either_prunes() {
        let mut a = mask3();
        let mut b = mask3();
        a.prune(0, 1).unwrap();
        b.prune(0, 3).unwrap();
        let u = a.union_pruned(&b).unwrap();
        assert!(!u.is_kept(0, 1));
        assert!(!u.is_kept(0, 3));
        assert_eq!(u.pruned_count(), 2);
    }

    #[test]
    fn subset_relation() {
        let mut small = mask3();
        let mut big = mask3();
        small.prune(0, 1).unwrap();
        big.prune(0, 1).unwrap();
        big.prune(2, 0).unwrap();
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn intersection_is_subset_of_both() {
        let mut a = mask3();
        let mut b = mask3();
        a.prune(0, 0).unwrap();
        a.prune(0, 5).unwrap();
        b.prune(0, 5).unwrap();
        b.prune(2, 1).unwrap();
        let i = a.intersect_pruned(&b).unwrap();
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
    }

    #[test]
    fn display_summarizes_pruned_layers() {
        let mut m = mask3();
        m.prune(0, 1).unwrap();
        let s = m.to_string();
        assert!(s.contains("pruned=1"));
        assert!(s.contains("L0:1/8"));
    }

    #[test]
    fn mismatched_masks_error() {
        let net2 = NetworkBuilder::mlp(&[4, 8, 8, 3], 1).build().unwrap();
        let other = PruneMask::all_kept(&net2);
        let m = mask3();
        assert!(m.intersect_pruned(&other).is_err());
        assert!(m.union_pruned(&other).is_err());
        assert!(!m.is_subset_of(&other));
    }
}
