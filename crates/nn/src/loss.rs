//! Softmax and cross-entropy loss for training the substrate networks.

use capnn_tensor::Tensor;

/// Numerically stable softmax of a logit vector.
///
/// # Examples
///
/// ```
/// use capnn_nn::softmax;
/// use capnn_tensor::Tensor;
///
/// let p = softmax(&Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap());
/// assert!((p.as_slice()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    let m = logits.max().unwrap_or(0.0);
    let exp = logits.map(|x| (x - m).exp());
    let z = exp.sum();
    if z == 0.0 {
        return Tensor::full(logits.dims(), 1.0 / logits.len().max(1) as f32);
    }
    exp.scale(1.0 / z)
}

/// Cross-entropy loss of a logit vector against a target class, together
/// with the gradient of the loss with respect to the logits
/// (`softmax(logits) - onehot(target)`).
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn cross_entropy_loss(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(
        target < logits.len(),
        "target class {target} out of range for {} logits",
        logits.len()
    );
    let probs = softmax(logits);
    let p_target = probs.as_slice()[target].max(1e-12);
    let loss = -p_target.ln();
    let mut grad = probs;
    grad.as_mut_slice()[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let b = softmax(&Tensor::from_vec(vec![101.0, 102.0], &[2]).unwrap());
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let p = softmax(&Tensor::from_vec(vec![1000.0, 0.0], &[2]).unwrap());
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
        assert!((p.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let (loss, _) = cross_entropy_loss(&Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap(), 0);
        assert!(loss < 1e-3);
        let (loss_wrong, _) =
            cross_entropy_loss(&Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap(), 1);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(vec![0.0, 0.0, 0.0], &[3]).unwrap();
        let (_, g) = cross_entropy_loss(&logits, 1);
        let third = 1.0 / 3.0;
        assert!((g.as_slice()[0] - third).abs() < 1e-6);
        assert!((g.as_slice()[1] - (third - 1.0)).abs() < 1e-6);
        // gradient sums to zero
        assert!(g.sum().abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[3]).unwrap();
        let (_, g) = cross_entropy_loss(&logits, 2);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (cross_entropy_loss(&lp, 2).0 - cross_entropy_loss(&lm, 2).0) / (2.0 * eps);
            assert!((num - g.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        cross_entropy_loss(&Tensor::zeros(&[2]), 5);
    }
}
