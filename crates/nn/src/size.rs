//! Remaining-parameter accounting for masked networks.
//!
//! The paper measures model size as "the number of (unique) parameters in the
//! network including the number of weights and biases" after pruning. Removing
//! a unit removes its incoming weights and bias *and* the downstream weights
//! that consumed it; across a flatten boundary one conv channel feeds
//! `h*w` dense inputs, which this walker accounts for exactly.

use crate::error::NnError;
use crate::layer::Layer;
use crate::mask::PruneMask;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Unique remaining parameter counts of a (masked) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParamCount {
    /// Remaining weight parameters.
    pub weights: usize,
    /// Remaining bias parameters.
    pub biases: usize,
}

impl ParamCount {
    /// Total remaining parameters.
    pub fn total(&self) -> usize {
        self.weights + self.biases
    }

    /// This count as a fraction of `original` (the paper's "relative model
    /// size"). Returns 1.0 when `original` is empty.
    pub fn relative_to(&self, original: &ParamCount) -> f64 {
        if original.total() == 0 {
            1.0
        } else {
            self.total() as f64 / original.total() as f64
        }
    }
}

/// Computes the unique remaining parameters of `net` under `mask`.
///
/// Pass [`PruneMask::all_kept`] to obtain the original model size.
///
/// # Errors
///
/// Returns an error if the mask does not match the network's layer
/// structure.
///
/// # Examples
///
/// ```
/// use capnn_nn::{model_size, NetworkBuilder, PruneMask};
///
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
/// let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
/// assert_eq!(full.total(), net.param_count());
/// ```
pub fn model_size(net: &Network, mask: &PruneMask) -> Result<ParamCount, NnError> {
    if mask.len() != net.len() {
        return Err(NnError::Config(format!(
            "mask spans {} layers, network has {}",
            mask.len(),
            net.len()
        )));
    }
    let shapes = net.layer_shapes()?;
    let mut count = ParamCount::default();
    // Number of kept inputs feeding the next parameterized layer.
    let mut kept_inputs: usize = match net.input_dims().len() {
        3 => net.input_dims()[0],
        _ => net.input_dims().iter().product(),
    };
    for (i, layer) in net.layers().iter().enumerate() {
        match layer {
            Layer::Conv2d(c) => {
                let kept_out = mask.kept_in_layer(i);
                let k = c.spec().kernel;
                count.weights += kept_out * kept_inputs * k * k;
                count.biases += kept_out;
                kept_inputs = kept_out;
            }
            Layer::Dense(d) => {
                let _ = d;
                let kept_out = mask.kept_in_layer(i);
                count.weights += kept_out * kept_inputs;
                count.biases += kept_out;
                kept_inputs = kept_out;
            }
            Layer::Flatten => {
                let in_shape = &shapes[i];
                if in_shape.len() == 3 {
                    kept_inputs *= in_shape[1] * in_shape[2];
                }
            }
            Layer::Relu | Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => {}
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    #[test]
    fn unmasked_size_equals_param_count() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1), (8, 1)], &[16, 8], 3, 1)
            .build()
            .unwrap();
        let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
        assert_eq!(full.total(), net.param_count());
    }

    #[test]
    fn pruning_dense_neuron_removes_in_and_out_weights() {
        // mlp 4 → 8 → 3: pruning one hidden neuron removes 4 incoming
        // weights + 1 bias + 3 outgoing weights.
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 2).unwrap();
        let pruned = model_size(&net, &mask).unwrap();
        assert_eq!(full.total() - pruned.total(), 4 + 1 + 3);
    }

    #[test]
    fn pruning_conv_channel_accounts_for_flatten_multiplicity() {
        // conv (1→4ch, 3x3, 8x8 image, pool to 4x4) → flatten → dense 10.
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 1)
            .build()
            .unwrap();
        let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 1).unwrap();
        let pruned = model_size(&net, &mask).unwrap();
        // Removed: 1*3*3 incoming conv weights + 1 bias + 4*4 plane × 10
        // dense outgoing weights.
        assert_eq!(full.total() - pruned.total(), 9 + 1 + 16 * 10);
    }

    #[test]
    fn compacted_network_matches_size_accounting() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1), (6, 1)], &[12, 8], 3, 5)
            .build()
            .unwrap();
        let mut mask = PruneMask::all_kept(&net);
        let prunable = net.prunable_layers();
        mask.prune(prunable[0], 0).unwrap();
        mask.prune(prunable[1], 2).unwrap();
        mask.prune(prunable[1], 3).unwrap();
        mask.prune(prunable[2], 7).unwrap();
        let predicted = model_size(&net, &mask).unwrap();
        let compacted = net.compact(&mask).unwrap();
        assert_eq!(predicted.total(), compacted.param_count());
    }

    #[test]
    fn relative_size_bounds() {
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.set_layer(0, vec![false; 8]).unwrap();
        let pruned = model_size(&net, &mask).unwrap();
        let rel = pruned.relative_to(&full);
        assert!(rel > 0.0 && rel < 1.0);
        assert_eq!(full.relative_to(&full), 1.0);
        assert_eq!(
            ParamCount::default().relative_to(&ParamCount::default()),
            1.0
        );
    }

    #[test]
    fn mismatched_mask_rejected() {
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        let other = NetworkBuilder::mlp(&[4, 8, 8, 3], 1).build().unwrap();
        let mask = PruneMask::all_kept(&other);
        assert!(model_size(&net, &mask).is_err());
    }

    #[test]
    fn monotonicity_more_pruning_never_grows() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10, 6], 3, 2)
            .build()
            .unwrap();
        let mut mask = PruneMask::all_kept(&net);
        let mut prev = model_size(&net, &mask).unwrap().total();
        for (layer, unit) in [(0usize, 0usize), (0, 3), (4, 1), (4, 8), (6, 0)] {
            if mask.prune(layer, unit).is_ok() {
                let now = model_size(&net, &mask).unwrap().total();
                assert!(now <= prev);
                prev = now;
            }
        }
    }
}
