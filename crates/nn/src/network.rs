//! The [`Network`] container: an ordered stack of layers with masked
//! execution, activation taps and tail replay.

use crate::error::NnError;
use crate::exec::ExecScratch;
use crate::layer::Layer;
use crate::mask::PruneMask;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one prunable unit: `(layer index, unit index)`.
///
/// Dense layers expose their output neurons as units; convolutional layers
/// expose their output channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrunableUnit {
    /// Layer index within the network.
    pub layer: usize,
    /// Unit index within the layer.
    pub unit: usize,
}

/// A feed-forward stack of layers operating on one sample at a time.
///
/// # Examples
///
/// ```
/// use capnn_nn::{Engine, InferenceRequest, NetworkBuilder};
/// use capnn_tensor::Tensor;
///
/// let net = NetworkBuilder::mlp(&[4, 6, 2], 7).build().unwrap();
/// let mut engine = Engine::new(&net);
/// let logits = engine
///     .run(InferenceRequest::single(&Tensor::ones(&[4])))
///     .unwrap()
///     .into_single()
///     .unwrap();
/// assert_eq!(logits.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
    input_dims: Vec<usize>,
}

impl Network {
    /// Creates a network from layers and the expected input shape, verifying
    /// that shapes propagate end to end.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if any adjacent pair of layers is shape
    /// incompatible or `layers` is empty.
    pub fn new(layers: Vec<Layer>, input_dims: &[usize]) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::Config(
                "network must have at least one layer".into(),
            ));
        }
        let net = Self {
            layers,
            input_dims: input_dims.to_vec(),
        };
        net.layer_shapes()?; // validate propagation
        Ok(net)
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer and baselines).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// The expected input shape.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has zero layers (never true for a constructed
    /// network).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of output classes (size of the final layer's output), or 0
    /// for a network whose shapes fail to propagate (impossible for a
    /// successfully constructed network).
    pub fn num_classes(&self) -> usize {
        self.layer_shapes()
            .ok()
            .and_then(|shapes| shapes.last().map(|s| s.iter().product()))
            .unwrap_or(0)
    }

    /// Activation shapes at each layer boundary: element 0 is the input
    /// shape, element `i + 1` the output shape of layer `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes fail to propagate (impossible for a
    /// constructed network).
    pub fn layer_shapes(&self) -> Result<Vec<Vec<usize>>, NnError> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        shapes.push(self.input_dims.clone());
        let mut cur = self.input_dims.clone();
        for layer in &self.layers {
            cur = layer.output_shape(&cur)?;
            shapes.push(cur.clone());
        }
        Ok(shapes)
    }

    /// Indices of prunable layers (dense/conv), in execution order.
    pub fn prunable_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.unit_count().map(|_| i))
            .collect()
    }

    /// Indices of the last `n` prunable layers — the paper's `l_start …
    /// |L|` tail (footnote 3: early layers extract generic features and are
    /// left alone).
    pub fn prunable_tail(&self, n: usize) -> Vec<usize> {
        let all = self.prunable_layers();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// The dense forward body shared by [`Network::predict`], the trainer
    /// and the unified [`crate::Engine`]'s dense path.
    pub(crate) fn forward_impl(
        &self,
        input: &capnn_tensor::Tensor,
    ) -> Result<capnn_tensor::Tensor, NnError> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Masked forward through the structured compute-skipping engine
    /// ([`crate::exec`]), reusing a caller-held [`ExecScratch`] so repeated
    /// masked forwards are allocation-free after warmup. Pruned dense rows
    /// and conv channels are never computed, and pruned inputs are dropped
    /// from downstream inner loops; the result is value-identical to the
    /// zero-after-dense reference
    /// ([`Network::forward_masked_reference_from`]).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn forward_masked_with_scratch(
        &self,
        input: &capnn_tensor::Tensor,
        mask: &PruneMask,
        scratch: &mut ExecScratch,
    ) -> Result<capnn_tensor::Tensor, NnError> {
        crate::exec::run_masked(self, 0, input, mask, scratch)
    }

    /// Tail replay: runs layers `start..` on `activation` (which must be the
    /// activation at the *input* of layer `start`), applying `mask`.
    ///
    /// Pruning only ever touches the last few layers, so evaluating a prune
    /// candidate does not require recomputing the expensive convolutional
    /// prefix — callers cache the boundary activation once and replay the
    /// tail. This is exact: masks at layers before `start` would be ignored,
    /// so callers must choose `start` at or before the first masked layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `start` is out of range or shapes mismatch.
    pub fn forward_masked_from(
        &self,
        start: usize,
        activation: &capnn_tensor::Tensor,
        mask: &PruneMask,
    ) -> Result<capnn_tensor::Tensor, NnError> {
        let mut scratch = ExecScratch::new();
        crate::exec::run_masked(self, start, activation, mask, &mut scratch)
    }

    /// [`Network::forward_masked_from`] reusing a caller-held
    /// [`ExecScratch`] (the hot loop of mask-candidate evaluation).
    ///
    /// # Errors
    ///
    /// Returns an error if `start` is out of range or shapes mismatch.
    pub fn forward_masked_from_with_scratch(
        &self,
        start: usize,
        activation: &capnn_tensor::Tensor,
        mask: &PruneMask,
        scratch: &mut ExecScratch,
    ) -> Result<capnn_tensor::Tensor, NnError> {
        crate::exec::run_masked(self, start, activation, mask, scratch)
    }

    /// The original zero-after-dense masked forward, starting from layer
    /// `start` (reference counterpart of [`Network::forward_masked_from`]):
    /// every layer runs densely, then pruned units' outputs are zeroed.
    /// Kept as the semantic baseline the compute-skipping engine is
    /// property-tested against — [`crate::ExecStrategy::Reference`] routes
    /// here.
    ///
    /// # Errors
    ///
    /// Returns an error if `start` is out of range or shapes mismatch.
    pub fn forward_masked_reference_from(
        &self,
        start: usize,
        activation: &capnn_tensor::Tensor,
        mask: &PruneMask,
    ) -> Result<capnn_tensor::Tensor, NnError> {
        if start > self.layers.len() {
            return Err(NnError::LayerOutOfRange {
                index: start,
                len: self.layers.len(),
            });
        }
        let mut x = activation.clone();
        for (i, layer) in self.layers.iter().enumerate().skip(start) {
            x = layer.forward(&x)?;
            if let Some(flags) = mask.layer_flags(i) {
                zero_pruned_units(&mut x, flags)?;
            }
        }
        Ok(x)
    }

    /// Forward pass that records the activation at every layer boundary.
    /// `result[0]` is the input; `result[i + 1]` is layer `i`'s output.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn forward_trace(
        &self,
        input: &capnn_tensor::Tensor,
    ) -> Result<Vec<capnn_tensor::Tensor>, NnError> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        let mut cur = input.clone();
        for layer in &self.layers {
            let next = layer.forward(&cur)?;
            acts.push(std::mem::replace(&mut cur, next));
        }
        acts.push(cur);
        Ok(acts)
    }

    /// Top-1 predicted class for an input.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn predict(&self, input: &capnn_tensor::Tensor) -> Result<usize, NnError> {
        Ok(self.forward_impl(input)?.argmax().unwrap_or(0))
    }

    /// Renders a human-readable architecture summary: one line per layer
    /// with kind, output shape and parameter count, ending with the total.
    ///
    /// # Examples
    ///
    /// ```
    /// use capnn_nn::NetworkBuilder;
    ///
    /// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
    /// let s = net.summary();
    /// assert!(s.contains("dense"));
    /// assert!(s.contains("total params"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let shapes = match self.layer_shapes() {
            Ok(shapes) => shapes,
            Err(e) => return format!("<network with invalid shapes: {e}>"),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<3} {:<8} {:<14} {:>10}",
            "#", "kind", "output", "params"
        );
        for (i, layer) in self.layers.iter().enumerate() {
            let shape = shapes[i + 1]
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x");
            let _ = writeln!(
                out,
                "{:<3} {:<8} {:<14} {:>10}",
                i,
                layer.kind(),
                shape,
                layer.param_count()
            );
        }
        let _ = writeln!(out, "total params: {}", self.param_count());
        out
    }

    /// Builds a physically smaller network with pruned units removed, and
    /// dependent incoming weights of downstream layers dropped.
    ///
    /// The compacted network computes the same function as
    /// [`Network::forward_masked_with_scratch`] for the given mask (pruned units
    /// contribute nothing either way); this is what the cloud actually ships
    /// to the device.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask does not match the network, or if a
    /// layer would be left with zero units (a degenerate model).
    pub fn compact(&self, mask: &PruneMask) -> Result<Network, NnError> {
        if mask.len() != self.layers.len() {
            return Err(NnError::Config(format!(
                "mask spans {} layers, network has {}",
                mask.len(),
                self.layers.len()
            )));
        }
        let shapes = self.layer_shapes()?;
        let mut new_layers = Vec::with_capacity(self.layers.len());
        // Kept indices of the *unit-bearing* view of the current activation:
        // for CHW it's the kept channels, for flat vectors the kept elements.
        let mut kept_in: Vec<usize> = match self.input_dims.len() {
            3 => (0..self.input_dims[0]).collect(),
            _ => (0..self.input_dims.iter().product()).collect(),
        };
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Conv2d(c) => {
                    let flags = mask
                        .layer_flags(i)
                        .ok_or_else(|| NnError::Config("missing mask entry for conv".into()))?;
                    let kept_out: Vec<usize> =
                        (0..c.spec().out_channels).filter(|&u| flags[u]).collect();
                    if kept_out.is_empty() {
                        return Err(NnError::Config(format!(
                            "compaction would leave conv layer {i} with zero channels"
                        )));
                    }
                    let k = c.spec().kernel;
                    let mut spec = *c.spec();
                    spec.in_channels = kept_in.len();
                    spec.out_channels = kept_out.len();
                    let mut w = capnn_tensor::Tensor::zeros(&[kept_out.len(), kept_in.len(), k, k]);
                    let mut b = capnn_tensor::Tensor::zeros(&[kept_out.len()]);
                    let src_w = c.weights().as_slice();
                    let src_b = c.bias().as_slice();
                    let in_c_old = c.spec().in_channels;
                    {
                        let wv = w.as_mut_slice();
                        let bv = b.as_mut_slice();
                        for (no, &oc) in kept_out.iter().enumerate() {
                            bv[no] = src_b[oc];
                            for (ni, &ic) in kept_in.iter().enumerate() {
                                let dst = ((no * kept_in.len() + ni) * k * k)
                                    ..((no * kept_in.len() + ni + 1) * k * k);
                                let src = ((oc * in_c_old + ic) * k * k)
                                    ..((oc * in_c_old + ic + 1) * k * k);
                                wv[dst].copy_from_slice(&src_w[src]);
                            }
                        }
                    }
                    new_layers.push(Layer::Conv2d(crate::layer::Conv2dLayer::new(spec, w, b)?));
                    kept_in = kept_out;
                }
                Layer::Dense(d) => {
                    let flags = mask
                        .layer_flags(i)
                        .ok_or_else(|| NnError::Config("missing mask entry for dense".into()))?;
                    let kept_out: Vec<usize> =
                        (0..d.out_features()).filter(|&u| flags[u]).collect();
                    if kept_out.is_empty() {
                        return Err(NnError::Config(format!(
                            "compaction would leave dense layer {i} with zero neurons"
                        )));
                    }
                    let mut w = capnn_tensor::Tensor::zeros(&[kept_out.len(), kept_in.len()]);
                    let mut b = capnn_tensor::Tensor::zeros(&[kept_out.len()]);
                    let src_w = d.weights().as_slice();
                    let src_b = d.bias().as_slice();
                    let in_old = d.in_features();
                    {
                        let wv = w.as_mut_slice();
                        let bv = b.as_mut_slice();
                        for (no, &o) in kept_out.iter().enumerate() {
                            bv[no] = src_b[o];
                            for (ni, &iidx) in kept_in.iter().enumerate() {
                                wv[no * kept_in.len() + ni] = src_w[o * in_old + iidx];
                            }
                        }
                    }
                    new_layers.push(Layer::Dense(crate::layer::Dense::new(w, b)?));
                    kept_in = kept_out;
                }
                Layer::Relu => new_layers.push(Layer::Relu),
                Layer::MaxPool2d(spec) => new_layers.push(Layer::MaxPool2d(*spec)),
                Layer::AvgPool2d(spec) => new_layers.push(Layer::AvgPool2d(*spec)),
                Layer::Flatten => {
                    // Expand kept channel indices into kept flat indices.
                    let in_shape = &shapes[i];
                    if in_shape.len() == 3 {
                        let plane = in_shape[1] * in_shape[2];
                        kept_in = kept_in
                            .iter()
                            .flat_map(|&c| c * plane..(c + 1) * plane)
                            .collect();
                    }
                    new_layers.push(Layer::Flatten);
                }
            }
        }
        // New input dims: channels shrink only if the first layer's input was
        // masked, which never happens (input isn't a layer) — keep original.
        Network::new(new_layers, &self.input_dims)
    }

    /// Compiles this network + `mask` into a [`CompiledPlan`](crate::CompiledPlan):
    /// kept weights packed once into contiguous buffers so serving pays pure
    /// dense GEMM with zero masking logic. This is the fast path for
    /// repeatedly serving one personalized mask; see the
    /// [`plan`](crate::plan) module docs for the execution model and how it
    /// compares to [`Network::compact`].
    ///
    /// # Errors
    ///
    /// Returns an error if the mask does not span this network or carries
    /// flags for a non-prunable layer.
    pub fn compile(&self, mask: &PruneMask) -> Result<crate::CompiledPlan, NnError> {
        crate::CompiledPlan::compile(self, mask)
    }

    /// [`Network::compile`] at an explicit [`Precision`](crate::Precision):
    /// [`Precision::Int8`](crate::Precision::Int8) additionally quantizes
    /// the packed weight panels (one symmetric scale per output
    /// channel/column) so the plan serves through the int8 GEMM kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::compile`].
    pub fn compile_with_precision(
        &self,
        mask: &PruneMask,
        precision: crate::Precision,
    ) -> Result<crate::CompiledPlan, NnError> {
        crate::CompiledPlan::compile_with_precision(self, mask, precision)
    }

    /// [`Network::compile_with_precision`] drawing packed weight kernels
    /// from `pool`: layers whose kept units match an already-interned
    /// kernel share that allocation instead of packing their own. The
    /// pool must be dedicated to this network.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::compile`].
    pub fn compile_shared(
        &self,
        mask: &PruneMask,
        precision: crate::Precision,
        pool: &crate::PanelPool,
    ) -> Result<crate::CompiledPlan, NnError> {
        crate::CompiledPlan::compile_shared(self, mask, precision, Some(pool))
    }

    /// Per-sample multiply–accumulates of an *unmasked* forward pass starting
    /// at layer `start` (pool/ReLU layers count one op per output element).
    /// Drives work-size thresholds for parallel per-sample sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerOutOfRange`] if `start > len()`.
    pub fn mac_count_from(&self, start: usize) -> Result<u64, NnError> {
        if start > self.layers.len() {
            return Err(NnError::LayerOutOfRange {
                index: start,
                len: self.layers.len(),
            });
        }
        let shapes = self.layer_shapes()?;
        let mut macs: u64 = 0;
        for (i, layer) in self.layers.iter().enumerate().skip(start) {
            macs += match layer {
                Layer::Dense(d) => (d.in_features() * d.out_features()) as u64,
                Layer::Conv2d(c) => c.spec().mac_count(shapes[i][1], shapes[i][2]),
                _ => shapes[i + 1].iter().product::<usize>() as u64,
            };
        }
        Ok(macs.max(1))
    }
}

/// Zeroes the units flagged `false`. For rank-1 activations a unit is one
/// element; for CHW activations it is a channel plane.
pub(crate) fn zero_pruned_units(
    x: &mut capnn_tensor::Tensor,
    flags: &[bool],
) -> Result<(), NnError> {
    let dims = x.dims().to_vec();
    match dims.len() {
        1 => {
            if dims[0] != flags.len() {
                return Err(NnError::Config(format!(
                    "mask has {} flags for activation of {} units",
                    flags.len(),
                    dims[0]
                )));
            }
            let xs = x.as_mut_slice();
            for (v, &keep) in xs.iter_mut().zip(flags) {
                if !keep {
                    *v = 0.0;
                }
            }
        }
        3 => {
            if dims[0] != flags.len() {
                return Err(NnError::Config(format!(
                    "mask has {} flags for activation of {} channels",
                    flags.len(),
                    dims[0]
                )));
            }
            let plane = dims[1] * dims[2];
            let xs = x.as_mut_slice();
            for (c, &keep) in flags.iter().enumerate() {
                if !keep {
                    for v in &mut xs[c * plane..(c + 1) * plane] {
                        *v = 0.0;
                    }
                }
            }
        }
        _ => {
            return Err(NnError::Config(format!(
                "cannot mask activation of rank {}",
                dims.len()
            )))
        }
    }
    Ok(())
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[{} layers:", self.layers.len())?;
        for l in &self.layers {
            write!(f, " {}", l.kind())?;
        }
        write!(f, "] params={}", self.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::{Engine, InferenceRequest};
    use capnn_tensor::{Tensor, XorShiftRng};

    fn small_cnn() -> Network {
        NetworkBuilder::cnn(&[1, 4, 4], &[(4, 1), (6, 1)], &[10], 3, 99)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_produces_logits() {
        let net = small_cnn();
        let out = net.forward_impl(&Tensor::ones(&[1, 4, 4])).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn forward_rejects_bad_input() {
        let net = small_cnn();
        assert!(net.forward_impl(&Tensor::ones(&[2, 4, 4])).is_err());
    }

    #[test]
    fn layer_shapes_cover_all_boundaries() {
        let net = small_cnn();
        let shapes = net.layer_shapes().unwrap();
        assert_eq!(shapes.len(), net.len() + 1);
        assert_eq!(shapes[0], vec![1, 4, 4]);
        assert_eq!(*shapes.last().unwrap(), vec![3]);
    }

    #[test]
    fn prunable_layers_and_tail() {
        let net = small_cnn();
        let prunable = net.prunable_layers();
        // conv, conv, dense, dense(out)
        assert_eq!(prunable.len(), 4);
        assert_eq!(net.prunable_tail(2), prunable[2..].to_vec());
        assert_eq!(net.prunable_tail(99), prunable);
        assert!(net.prunable_tail(0).is_empty());
    }

    #[test]
    fn masked_forward_zeroes_dense_unit_exactly() {
        let net = NetworkBuilder::mlp(&[3, 5, 2], 11).build().unwrap();
        let mut mask = PruneMask::all_kept(&net);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9], &[3]).unwrap();
        let full = net.forward_masked_from(0, &x, &mask).unwrap();
        let plain = net.forward_impl(&x).unwrap();
        assert_eq!(full.as_slice(), plain.as_slice());

        // prune every hidden unit → output is the last layer's bias
        mask.set_layer(0, vec![false; 5]).unwrap();
        let out = net.forward_masked_from(0, &x, &mask).unwrap();
        let last_bias = match &net.layers()[2] {
            crate::Layer::Dense(d) => d.bias().clone(),
            _ => unreachable!(),
        };
        assert_eq!(out.as_slice(), last_bias.as_slice());
    }

    #[test]
    fn masked_forward_zeroes_conv_channel_plane() {
        let net = small_cnn();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 1).unwrap();
        let x = Tensor::ones(&[1, 4, 4]);
        // trace the masked activation after layer 0
        let mut a = net.layers()[0].forward(&x).unwrap();
        super::zero_pruned_units(&mut a, mask.layer_flags(0).unwrap()).unwrap();
        let plane = a.dims()[1] * a.dims()[2];
        assert!(a.as_slice()[plane..2 * plane].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tail_replay_matches_full_masked_forward() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(5);
        let mut mask = PruneMask::all_kept(&net);
        // mask only tail layers
        let tail = net.prunable_tail(2);
        mask.prune(tail[0], 3).unwrap();
        mask.prune(tail[0], 7).unwrap();
        for _ in 0..5 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let full = net.forward_masked_from(0, &x, &mask).unwrap();
            let trace = net.forward_trace(&x).unwrap();
            let start = tail[0];
            let replay = net
                .forward_masked_from(start, &trace[start], &mask)
                .unwrap();
            for (&a, &b) in full.as_slice().iter().zip(replay.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn masked_forward_matches_reference_engine() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(31);
        let mut mask = PruneMask::all_kept(&net);
        let prunable = net.prunable_layers();
        mask.prune(prunable[0], 2).unwrap();
        mask.prune(prunable[1], 1).unwrap();
        mask.prune(prunable[2], 4).unwrap();
        for _ in 0..4 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let fast = net.forward_masked_from(0, &x, &mask).unwrap();
            let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
            for (&a, &b) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
            assert_eq!(fast.argmax(), reference.argmax());
        }
    }

    #[test]
    fn forward_batch_matches_per_sample() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(41);
        let inputs: Vec<Tensor> = (0..7)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let batched = Engine::new(&net)
            .run(InferenceRequest::new(&inputs))
            .unwrap()
            .into_outputs();
        assert_eq!(batched.len(), inputs.len());
        for (x, y) in inputs.iter().zip(&batched) {
            let single = net.forward_impl(x).unwrap();
            assert_eq!(single.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn forward_masked_batch_matches_per_sample() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(43);
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(net.prunable_layers()[1], 0).unwrap();
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let batched = Engine::new(&net)
            .run(InferenceRequest::new(&inputs).masked(&mask))
            .unwrap()
            .into_outputs();
        for (x, y) in inputs.iter().zip(&batched) {
            let single = net.forward_masked_from(0, x, &mask).unwrap();
            assert_eq!(single.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn forward_batch_propagates_errors() {
        let net = small_cnn();
        let inputs = vec![Tensor::ones(&[1, 4, 4]), Tensor::ones(&[2, 4, 4])];
        assert!(Engine::new(&net)
            .run(InferenceRequest::new(&inputs))
            .is_err());
    }

    #[test]
    fn forward_trace_boundaries() {
        let net = small_cnn();
        let x = Tensor::ones(&[1, 4, 4]);
        let trace = net.forward_trace(&x).unwrap();
        assert_eq!(trace.len(), net.len() + 1);
        let direct = net.forward_impl(&x).unwrap();
        assert_eq!(trace.last().unwrap().as_slice(), direct.as_slice());
    }

    #[test]
    fn compact_matches_masked_forward() {
        let net = small_cnn();
        let mut rng = XorShiftRng::new(17);
        let mut mask = PruneMask::all_kept(&net);
        // prune one conv channel and two dense neurons (not in output layer)
        let prunable = net.prunable_layers();
        mask.prune(prunable[1], 0).unwrap();
        mask.prune(prunable[2], 2).unwrap();
        mask.prune(prunable[2], 5).unwrap();
        let compacted = net.compact(&mask).unwrap();
        assert!(compacted.param_count() < net.param_count());
        for _ in 0..8 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let a = net.forward_masked_from(0, &x, &mask).unwrap();
            let b = compacted.forward_impl(&x).unwrap();
            assert_eq!(a.len(), b.len());
            for (&u, &v) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((u - v).abs() < 1e-4, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn compact_rejects_empty_layer() {
        let net = NetworkBuilder::mlp(&[3, 4, 2], 1).build().unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.set_layer(0, vec![false; 4]).unwrap();
        assert!(net.compact(&mask).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(Network::new(vec![], &[3]).is_err());
    }

    #[test]
    fn summary_lists_every_layer_and_total() {
        let net = small_cnn();
        let s = net.summary();
        assert_eq!(s.lines().count(), net.len() + 2); // header + layers + total
        assert!(s.contains("conv"));
        assert!(s.contains("flatten"));
        assert!(s.contains(&format!("total params: {}", net.param_count())));
    }

    #[test]
    fn display_lists_layer_kinds() {
        let net = NetworkBuilder::mlp(&[3, 4, 2], 1).build().unwrap();
        let s = net.to_string();
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
    }
}
