//! Unified inference API: one request/response pair over every execution
//! strategy.
//!
//! There are four ways to compute *logits for inputs, under an optional
//! mask* — plain dense, the compute-skipping masked engine
//! ([`crate::exec`]), the zero-after-dense reference
//! ([`Network::forward_masked_reference_from`]), and the mask-compiled plan
//! path ([`crate::CompiledPlan`]). They are all the same operation,
//! differing only in which engine runs it. This module is the one inference
//! surface over all of them:
//!
//! * [`InferenceRequest`] — the inputs, an optional [`PruneMask`], and an
//!   [`ExecStrategy`] selecting the engine;
//! * [`Engine`] — a stateful runner owning the scratch buffers (and, for
//!   [`ExecStrategy::CompiledPlan`], the compiled-plan cache) so steady-state
//!   serving is allocation-free;
//! * [`InferenceResponse`] — the outputs in input order, tagged with the
//!   strategy that produced them.
//!
//! Every strategy is **argmax-bit-compatible** with every other at equal
//! semantics: each one runs the identical kernels with the identical batch
//! partitioning as the engine it routes to, so batching a request can never
//! perturb a single sample's output.
//!
//! # Examples
//!
//! ```
//! use capnn_nn::{Engine, ExecStrategy, InferenceRequest, NetworkBuilder, PruneMask};
//! use capnn_tensor::Tensor;
//!
//! let net = NetworkBuilder::mlp(&[4, 8, 3], 7).build().unwrap();
//! let mut mask = PruneMask::all_kept(&net);
//! mask.prune(0, 2).unwrap();
//!
//! let mut engine = Engine::new(&net);
//! let x = Tensor::ones(&[4]);
//! let dense = engine.run(InferenceRequest::single(&x)).unwrap();
//! let masked = engine
//!     .run(InferenceRequest::single(&x).masked(&mask))
//!     .unwrap();
//! assert_eq!(dense.outputs()[0].len(), 3);
//! assert_eq!(masked.strategy(), ExecStrategy::MaskedSkip);
//! ```

use crate::error::NnError;
use crate::exec::ExecScratch;
use crate::mask::PruneMask;
use crate::network::Network;
use crate::plan::{CompiledPlan, PanelPool, PlanScratch, Precision, Sparsity};
use capnn_tensor::{parallel, Tensor};
use std::sync::Arc;

/// Plans the engine keeps compiled at once. A serving thread that
/// alternates between a handful of masks (or f32/int8 precisions of one
/// mask) hits this cache instead of recompiling on every switch; beyond
/// the cap the least-recently-used plan is dropped — its packed panels
/// stay interned in the engine's [`PanelPool`] while any other live plan
/// still references them.
const PLAN_CACHE_CAP: usize = 8;

/// Which execution engine serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecStrategy {
    /// Plain dense forward; any mask on the request is ignored.
    Dense,
    /// The structured compute-skipping engine ([`crate::exec`]): pruned
    /// rows/channels are never computed. The default for masked requests.
    MaskedSkip,
    /// The zero-after-dense reference semantics — every layer runs densely,
    /// pruned units are zeroed afterwards. The baseline the other masked
    /// strategies are property-tested against.
    Reference,
    /// A mask-compiled [`CompiledPlan`]: kept weights pre-packed at compile
    /// time, per-inference cost is pure dense GEMM. The engine caches the
    /// plan and recompiles only when the request's mask changes.
    CompiledPlan,
}

impl ExecStrategy {
    /// Stable lowercase name, used in telemetry probe names.
    pub fn name(self) -> &'static str {
        match self {
            ExecStrategy::Dense => "dense",
            ExecStrategy::MaskedSkip => "masked_skip",
            ExecStrategy::Reference => "reference",
            ExecStrategy::CompiledPlan => "compiled_plan",
        }
    }
}

/// One inference call: inputs, an optional mask, and the strategy to run.
///
/// Built fluently: [`InferenceRequest::new`]/[`InferenceRequest::single`]
/// start a dense request; [`InferenceRequest::masked`] attaches a mask (and
/// upgrades the strategy to [`ExecStrategy::MaskedSkip`] if it was still
/// dense); [`InferenceRequest::strategy`] pins an explicit engine;
/// [`InferenceRequest::precision`] selects the numeric precision (and
/// upgrades a still-dense strategy to [`ExecStrategy::CompiledPlan`] for
/// [`Precision::Int8`], the only engine with int8 kernels);
/// [`InferenceRequest::sparsity`] selects the weight-sparsity tier (and
/// upgrades to [`ExecStrategy::CompiledPlan`] likewise — N:M kernels
/// exist only as compiled plans).
#[derive(Debug, Clone, Copy)]
pub struct InferenceRequest<'a> {
    inputs: &'a [Tensor],
    mask: Option<&'a PruneMask>,
    strategy: ExecStrategy,
    precision: Precision,
    sparsity: Sparsity,
}

impl<'a> InferenceRequest<'a> {
    /// A dense request over a batch of inputs.
    pub fn new(inputs: &'a [Tensor]) -> Self {
        Self {
            inputs,
            mask: None,
            strategy: ExecStrategy::Dense,
            precision: Precision::F32,
            sparsity: Sparsity::Dense,
        }
    }

    /// A dense request over one input.
    pub fn single(input: &'a Tensor) -> Self {
        Self::new(std::slice::from_ref(input))
    }

    /// Attaches a prune mask. If the strategy is still
    /// [`ExecStrategy::Dense`] it is upgraded to
    /// [`ExecStrategy::MaskedSkip`]; an explicitly chosen strategy is kept.
    pub fn masked(mut self, mask: &'a PruneMask) -> Self {
        self.mask = Some(mask);
        if self.strategy == ExecStrategy::Dense {
            self.strategy = ExecStrategy::MaskedSkip;
        }
        self
    }

    /// Pins the execution strategy. Masked strategies without an attached
    /// mask run with an all-kept mask (equivalent to dense semantics).
    pub fn strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the numeric precision. [`Precision::Int8`] is only served
    /// by the compiled-plan engine, so a strategy still at one of the
    /// defaults ([`ExecStrategy::Dense`], or the [`ExecStrategy::MaskedSkip`]
    /// that [`InferenceRequest::masked`] implies) is upgraded to
    /// [`ExecStrategy::CompiledPlan`]. A non-plan strategy pinned *after*
    /// this call is kept and rejected at [`Engine::run`] time.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        if precision == Precision::Int8
            && matches!(
                self.strategy,
                ExecStrategy::Dense | ExecStrategy::MaskedSkip
            )
        {
            self.strategy = ExecStrategy::CompiledPlan;
        }
        self
    }

    /// Selects the weight-sparsity tier. [`Sparsity::NM`] kernels exist
    /// only in compiled plans, so (like [`InferenceRequest::precision`])
    /// a strategy still at one of the defaults is upgraded to
    /// [`ExecStrategy::CompiledPlan`]; a non-plan strategy pinned *after*
    /// this call is kept and rejected at [`Engine::run`] time.
    pub fn sparsity(mut self, sparsity: Sparsity) -> Self {
        self.sparsity = sparsity;
        if sparsity != Sparsity::Dense
            && matches!(
                self.strategy,
                ExecStrategy::Dense | ExecStrategy::MaskedSkip
            )
        {
            self.strategy = ExecStrategy::CompiledPlan;
        }
        self
    }

    /// The request's inputs.
    pub fn inputs(&self) -> &'a [Tensor] {
        self.inputs
    }

    /// The attached mask, if any.
    pub fn mask(&self) -> Option<&'a PruneMask> {
        self.mask
    }

    /// The requested numeric precision.
    pub fn requested_precision(&self) -> Precision {
        self.precision
    }

    /// The requested weight-sparsity tier.
    pub fn requested_sparsity(&self) -> Sparsity {
        self.sparsity
    }
}

/// The outputs of one [`Engine::run`] call, in input order.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    outputs: Vec<Tensor>,
    strategy: ExecStrategy,
    precision: Precision,
}

impl InferenceResponse {
    /// The output logits, one tensor per input, in input order.
    pub fn outputs(&self) -> &[Tensor] {
        &self.outputs
    }

    /// Consumes the response, returning the outputs.
    pub fn into_outputs(self) -> Vec<Tensor> {
        self.outputs
    }

    /// Consumes a single-input response, returning its one output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Internal`] if the response does not hold exactly
    /// one output (the request was batched).
    pub fn into_single(self) -> Result<Tensor, NnError> {
        if self.outputs.len() != 1 {
            return Err(NnError::Internal(format!(
                "into_single on a response of {} outputs",
                self.outputs.len()
            )));
        }
        let mut outputs = self.outputs;
        outputs
            .pop()
            .ok_or_else(|| NnError::Internal("response lost its output".into()))
    }

    /// Top-1 class per output, in input order.
    pub fn argmaxes(&self) -> Vec<usize> {
        self.outputs
            .iter()
            .map(|o| o.argmax().unwrap_or(0))
            .collect()
    }

    /// The strategy that produced these outputs.
    pub fn strategy(&self) -> ExecStrategy {
        self.strategy
    }

    /// The numeric precision the outputs were computed at.
    pub fn precision(&self) -> Precision {
        self.precision
    }
}

/// A stateful inference runner over one [`Network`].
///
/// Owns the per-strategy scratch buffers (conv workspace, plan ping-pong
/// buffers) and the compiled-plan cache, so repeated [`Engine::run`] calls
/// are allocation-free after warmup. Create one engine per serving thread;
/// the network itself is shared by reference.
#[derive(Debug)]
pub struct Engine<'n> {
    net: &'n Network,
    scratch: ExecScratch,
    plan_scratch: PlanScratch,
    /// Compiled-plan cache in MRU order (front = most recent): each entry
    /// records the mask, precision and sparsity tier it was compiled for.
    /// Capped at [`PLAN_CACHE_CAP`] entries.
    plans: Vec<(PruneMask, Precision, Sparsity, Arc<CompiledPlan>)>,
    /// Packed-panel intern pool shared by every plan this engine
    /// compiles, so plans whose layers keep the same units reference one
    /// panel allocation.
    pool: PanelPool,
}

impl<'n> Engine<'n> {
    /// Creates an engine over `net` with empty scratch buffers.
    pub fn new(net: &'n Network) -> Self {
        Self {
            net,
            scratch: ExecScratch::new(),
            plan_scratch: PlanScratch::new(),
            plans: Vec::new(),
            pool: PanelPool::new(),
        }
    }

    /// Creates an engine pre-seeded with a compiled plan for `mask`, so the
    /// first [`ExecStrategy::CompiledPlan`] request skips compilation
    /// (serving caches share plans as `Arc<CompiledPlan>` handles).
    pub fn with_plan(net: &'n Network, mask: PruneMask, plan: Arc<CompiledPlan>) -> Self {
        let precision = plan.precision();
        let sparsity = plan.sparsity();
        Self {
            net,
            scratch: ExecScratch::new(),
            plan_scratch: PlanScratch::new(),
            plans: vec![(mask, precision, sparsity, plan)],
            pool: PanelPool::new(),
        }
    }

    /// The network this engine serves.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// Runs one request and returns the outputs in input order.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch between an input and the network,
    /// or if plan compilation rejects the request's mask.
    pub fn run(&mut self, req: InferenceRequest<'_>) -> Result<InferenceResponse, NnError> {
        capnn_telemetry::count("engine.requests", 1);
        if req.precision == Precision::Int8 && req.strategy != ExecStrategy::CompiledPlan {
            return Err(NnError::Config(format!(
                "int8 inference is only served by the compiled-plan engine, \
                 not strategy `{}`",
                req.strategy.name()
            )));
        }
        if req.sparsity != Sparsity::Dense && req.strategy != ExecStrategy::CompiledPlan {
            return Err(NnError::Config(format!(
                "{} inference is only served by the compiled-plan engine, \
                 not strategy `{}`",
                req.sparsity.name(),
                req.strategy.name()
            )));
        }
        let span_name = ["engine.", req.strategy.name(), "_ns"].concat();
        let _span = capnn_telemetry::time(&span_name);
        let outputs = match req.strategy {
            ExecStrategy::Dense => self.run_dense(req.inputs),
            ExecStrategy::MaskedSkip => match req.mask {
                Some(mask) => self.run_masked_skip(req.inputs, mask),
                None => self.run_masked_skip(req.inputs, &PruneMask::all_kept(self.net)),
            },
            ExecStrategy::Reference => match req.mask {
                Some(mask) => self.run_reference(req.inputs, mask),
                None => self.run_reference(req.inputs, &PruneMask::all_kept(self.net)),
            },
            ExecStrategy::CompiledPlan => {
                let plan = match req.mask {
                    Some(mask) => self.plan_for(mask, req.precision, req.sparsity)?,
                    None => {
                        self.plan_for(&PruneMask::all_kept(self.net), req.precision, req.sparsity)?
                    }
                };
                plan.forward_batch_with_scratch(req.inputs, &mut self.plan_scratch)
            }
        }?;
        Ok(InferenceResponse {
            outputs,
            strategy: req.strategy,
            precision: req.precision,
        })
    }

    /// Runs many requests at once, batching across them: requests that
    /// agree on (strategy, precision, mask) are concatenated into one
    /// batched execution — the multi-request entry a serving front-end
    /// uses to amortize kernel launches across users whose profiles
    /// canonicalize to the same plan. Responses come back in request
    /// order, each holding its own request's outputs in input order.
    ///
    /// Outputs are bitwise identical to running each request through
    /// [`Engine::run`] individually *when the engine partitions batches
    /// sample-serially* (every strategy but [`ExecStrategy::Dense`] /
    /// [`ExecStrategy::MaskedSkip`] under multi-thread pools), and
    /// argmax-compatible always — grouping never changes the kernels, only
    /// the batch boundaries.
    ///
    /// # Errors
    ///
    /// Fails on the first group whose execution fails (shape mismatch,
    /// plan compilation rejection), with no partial responses.
    pub fn run_grouped(
        &mut self,
        reqs: &[InferenceRequest<'_>],
    ) -> Result<Vec<InferenceResponse>, NnError> {
        // Group by (strategy, precision, sparsity, mask): linear scan —
        // serving dispatches group a handful of distinct plans per call.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let found = groups.iter_mut().find(|(rep, _)| {
                let r = &reqs[*rep];
                r.strategy == req.strategy
                    && r.precision == req.precision
                    && r.sparsity == req.sparsity
                    && match (r.mask, req.mask) {
                        (None, None) => true,
                        (Some(a), Some(b)) => std::ptr::eq(a, b) || a == b,
                        _ => false,
                    }
            });
            match found {
                Some((_, members)) => members.push(i),
                None => groups.push((i, vec![i])),
            }
        }
        capnn_telemetry::count("engine.grouped_calls", 1);
        let mut responses: Vec<Option<InferenceResponse>> = (0..reqs.len()).map(|_| None).collect();
        for (rep, members) in groups {
            let template = &reqs[rep];
            let inputs: Vec<Tensor> = members
                .iter()
                .flat_map(|&i| reqs[i].inputs.iter().cloned())
                .collect();
            capnn_telemetry::observe("engine.group_size", inputs.len() as u64);
            let mut grouped = InferenceRequest::new(&inputs).strategy(template.strategy);
            grouped.mask = template.mask;
            grouped.precision = template.precision;
            grouped.sparsity = template.sparsity;
            let mut outputs = self.run(grouped)?.into_outputs().into_iter();
            for &i in &members {
                let take = reqs[i].inputs.len();
                responses[i] = Some(InferenceResponse {
                    outputs: outputs.by_ref().take(take).collect(),
                    strategy: template.strategy,
                    precision: template.precision,
                });
            }
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every request assigned to exactly one group"))
            .collect())
    }

    /// Dense batch path: identical partitioning to the legacy
    /// `forward_batch` (contiguous chunks, one per worker, samples serial
    /// within a chunk), so outputs are bitwise equal for any thread count.
    fn run_dense(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, NnError> {
        let net = self.net;
        let threads = parallel::max_threads();
        let chunks = parallel::parallel_reduce(inputs.len(), threads, 1, |range| {
            inputs[range]
                .iter()
                .map(|x| net.forward_impl(x))
                .collect::<Result<Vec<_>, NnError>>()
        });
        collect_chunks(inputs.len(), chunks)
    }

    /// Compute-skipping path. Single samples reuse the engine's scratch;
    /// batches shard across the pool with one scratch per worker, exactly
    /// like the legacy `forward_masked_batch`.
    fn run_masked_skip(
        &mut self,
        inputs: &[Tensor],
        mask: &PruneMask,
    ) -> Result<Vec<Tensor>, NnError> {
        let net = self.net;
        if inputs.len() == 1 {
            let out = crate::exec::run_masked(net, 0, &inputs[0], mask, &mut self.scratch)?;
            return Ok(vec![out]);
        }
        let threads = parallel::max_threads();
        let chunks = parallel::parallel_reduce(inputs.len(), threads, 1, |range| {
            let mut scratch = ExecScratch::new();
            inputs[range]
                .iter()
                .map(|x| crate::exec::run_masked(net, 0, x, mask, &mut scratch))
                .collect::<Result<Vec<_>, NnError>>()
        });
        collect_chunks(inputs.len(), chunks)
    }

    /// Zero-after-dense reference semantics, sample by sample (the
    /// reference path is a correctness baseline, not a throughput path).
    fn run_reference(&self, inputs: &[Tensor], mask: &PruneMask) -> Result<Vec<Tensor>, NnError> {
        inputs
            .iter()
            .map(|x| self.net.forward_masked_reference_from(0, x, mask))
            .collect()
    }

    /// Returns the cached plan compiled for an equal (mask, precision,
    /// sparsity) triple, moving it to the front of the MRU list;
    /// otherwise compiles a fresh one through the engine's
    /// [`PanelPool`], caches it at the front and drops the
    /// least-recently-used entry past [`PLAN_CACHE_CAP`].
    fn plan_for(
        &mut self,
        mask: &PruneMask,
        precision: Precision,
        sparsity: Sparsity,
    ) -> Result<Arc<CompiledPlan>, NnError> {
        if let Some(pos) = self
            .plans
            .iter()
            .position(|(m, p, s, _)| m == mask && *p == precision && *s == sparsity)
        {
            let entry = self.plans.remove(pos);
            let plan = Arc::clone(&entry.3);
            self.plans.insert(0, entry);
            return Ok(plan);
        }
        let plan = Arc::new(CompiledPlan::compile_sparse(
            self.net,
            mask,
            precision,
            sparsity,
            Some(&self.pool),
        )?);
        self.plans
            .insert(0, (mask.clone(), precision, sparsity, Arc::clone(&plan)));
        self.plans.truncate(PLAN_CACHE_CAP);
        Ok(plan)
    }
}

/// Flattens per-worker output chunks (in chunk order) into one vector,
/// propagating the first error by sample order.
fn collect_chunks(
    n: usize,
    chunks: Vec<Result<Vec<Tensor>, NnError>>,
) -> Result<Vec<Tensor>, NnError> {
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use capnn_tensor::XorShiftRng;

    fn small_cnn() -> Network {
        NetworkBuilder::cnn(&[1, 4, 4], &[(4, 1), (6, 1)], &[10], 3, 99)
            .build()
            .unwrap()
    }

    fn pruned_mask(net: &Network) -> PruneMask {
        let mut mask = PruneMask::all_kept(net);
        let prunable = net.prunable_layers();
        mask.prune(prunable[0], 1).unwrap();
        mask.prune(prunable[1], 2).unwrap();
        mask.prune(prunable[2], 4).unwrap();
        mask
    }

    #[test]
    fn dense_matches_forward_impl_bitwise() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(61);
        for _ in 0..4 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let legacy = net.forward_impl(&x).unwrap();
            let unified = engine
                .run(InferenceRequest::single(&x))
                .unwrap()
                .into_single()
                .unwrap();
            assert_eq!(unified.as_slice(), legacy.as_slice());
        }
    }

    #[test]
    fn masked_skip_matches_exec_engine_bitwise() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(62);
        for _ in 0..4 {
            let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
            let legacy = net.forward_masked_from(0, &x, &mask).unwrap();
            let unified = engine
                .run(InferenceRequest::single(&x).masked(&mask))
                .unwrap()
                .into_single()
                .unwrap();
            assert_eq!(unified.as_slice(), legacy.as_slice());
        }
    }

    #[test]
    fn reference_matches_zero_after_dense_bitwise() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(63);
        let x = Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng);
        let legacy = net.forward_masked_reference_from(0, &x, &mask).unwrap();
        let unified = engine
            .run(
                InferenceRequest::single(&x)
                    .masked(&mask)
                    .strategy(ExecStrategy::Reference),
            )
            .unwrap()
            .into_single()
            .unwrap();
        assert_eq!(unified.as_slice(), legacy.as_slice());
    }

    #[test]
    fn compiled_plan_strategy_matches_direct_plan_and_caches() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let plan = net.compile(&mask).unwrap();
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(64);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let direct = plan.forward_batch(&inputs).unwrap();
        let unified = engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .strategy(ExecStrategy::CompiledPlan),
            )
            .unwrap();
        for (a, b) in direct.iter().zip(unified.outputs()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // second run with an equal mask hits the cached plan
        let cached = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask.clone())
                    .strategy(ExecStrategy::CompiledPlan),
            )
            .unwrap();
        let after = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert!(Arc::ptr_eq(&cached, &after));
    }

    #[test]
    fn int8_request_runs_compiled_plan_and_matches_direct_int8_plan() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let plan = CompiledPlan::compile_with_precision(&net, &mask, Precision::Int8).unwrap();
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(66);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let direct = plan.forward_batch(&inputs).unwrap();
        // precision() on a dense request upgrades the strategy itself
        let resp = engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .strategy(ExecStrategy::CompiledPlan)
                    .precision(Precision::Int8),
            )
            .unwrap();
        assert_eq!(resp.precision(), Precision::Int8);
        assert_eq!(resp.strategy(), ExecStrategy::CompiledPlan);
        for (a, b) in direct.iter().zip(resp.outputs()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn int8_precision_upgrades_dense_strategy_to_plan() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        let resp = engine
            .run(InferenceRequest::single(&x).precision(Precision::Int8))
            .unwrap();
        assert_eq!(resp.strategy(), ExecStrategy::CompiledPlan);
        assert_eq!(resp.precision(), Precision::Int8);
    }

    #[test]
    fn int8_with_pinned_non_plan_strategy_is_rejected() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        for strategy in [
            ExecStrategy::Dense,
            ExecStrategy::MaskedSkip,
            ExecStrategy::Reference,
        ] {
            let err = engine
                .run(
                    InferenceRequest::single(&x)
                        .precision(Precision::Int8)
                        .strategy(strategy),
                )
                .unwrap_err();
            match err {
                NnError::Config(msg) => assert!(msg.contains(strategy.name()), "{msg}"),
                other => panic!("expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn plan_cache_is_keyed_by_precision() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        let f32_req = InferenceRequest::single(&x)
            .masked(&mask)
            .strategy(ExecStrategy::CompiledPlan);
        engine.run(f32_req).unwrap();
        let f32_plan = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert_eq!(f32_plan.precision(), Precision::F32);
        // switching precision compiles a second entry even though the
        // mask is equal...
        engine.run(f32_req.precision(Precision::Int8)).unwrap();
        let int8_plan = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert!(!Arc::ptr_eq(&f32_plan, &int8_plan));
        assert_eq!(int8_plan.precision(), Precision::Int8);
        // ...and a repeat int8 request hits the cache entry
        engine.run(f32_req.precision(Precision::Int8)).unwrap();
        let again = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert!(Arc::ptr_eq(&int8_plan, &again));
        // ...while the f32 plan is still resident (no recompile on switch)
        engine.run(f32_req).unwrap();
        let back = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert!(Arc::ptr_eq(&f32_plan, &back));
        assert_eq!(engine.plans.len(), 2);
    }

    #[test]
    fn nm_request_runs_compiled_plan_and_caches_by_sparsity() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let direct =
            CompiledPlan::compile_sparse(&net, &mask, Precision::F32, Sparsity::NM(2, 4), None)
                .unwrap();
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(70);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let want = direct.forward_batch(&inputs).unwrap();
        // sparsity() upgrades the masked default to the plan engine
        let resp = engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .sparsity(Sparsity::NM(2, 4)),
            )
            .unwrap();
        assert_eq!(resp.strategy(), ExecStrategy::CompiledPlan);
        for (a, b) in want.iter().zip(resp.outputs()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // a dense-tier request on the same mask compiles a second entry
        engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .strategy(ExecStrategy::CompiledPlan),
            )
            .unwrap();
        assert_eq!(engine.plans.len(), 2);
        // a repeat N:M request hits its own cache entry
        let nm_plan = engine
            .plans
            .iter()
            .find(|(_, _, s, _)| *s == Sparsity::NM(2, 4))
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        engine
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .sparsity(Sparsity::NM(2, 4)),
            )
            .unwrap();
        let front = engine
            .plans
            .first()
            .map(|(_, _, _, p)| Arc::clone(p))
            .unwrap();
        assert!(Arc::ptr_eq(&nm_plan, &front));
        assert_eq!(engine.plans.len(), 2);
    }

    #[test]
    fn nm_with_pinned_non_plan_strategy_is_rejected() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        for strategy in [
            ExecStrategy::Dense,
            ExecStrategy::MaskedSkip,
            ExecStrategy::Reference,
        ] {
            let err = engine
                .run(
                    InferenceRequest::single(&x)
                        .sparsity(Sparsity::NM(2, 4))
                        .strategy(strategy),
                )
                .unwrap_err();
            match err {
                NnError::Config(msg) => assert!(msg.contains("nm2_4"), "{msg}"),
                other => panic!("expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_grouped_keeps_nm_and_dense_requests_apart() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(71);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let reqs: Vec<InferenceRequest<'_>> = vec![
            InferenceRequest::single(&inputs[0])
                .masked(&mask)
                .sparsity(Sparsity::NM(2, 4)),
            InferenceRequest::single(&inputs[1])
                .masked(&mask)
                .strategy(ExecStrategy::CompiledPlan),
            InferenceRequest::single(&inputs[2])
                .masked(&mask)
                .sparsity(Sparsity::NM(2, 4)),
            InferenceRequest::single(&inputs[3])
                .masked(&mask)
                .strategy(ExecStrategy::CompiledPlan),
        ];
        let individual: Vec<Tensor> = reqs
            .iter()
            .map(|r| {
                let mut fresh = Engine::new(&net);
                fresh.run(*r).unwrap().into_single().unwrap()
            })
            .collect();
        let grouped = engine.run_grouped(&reqs).unwrap();
        for (resp, expect) in grouped.iter().zip(&individual) {
            assert_eq!(resp.outputs()[0].as_slice(), expect.as_slice());
        }
        // two groups → two cached plans, not four
        assert_eq!(engine.plans.len(), 2);
    }

    #[test]
    fn plan_cache_keeps_alternating_masks_and_evicts_past_cap() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        // two alternating masks both stay cached — the old single-slot
        // cache recompiled on every switch
        let mask_a = pruned_mask(&net);
        let mut mask_b = PruneMask::all_kept(&net);
        mask_b.prune(net.prunable_layers()[0], 0).unwrap();
        for _ in 0..3 {
            for mask in [&mask_a, &mask_b] {
                engine
                    .run(
                        InferenceRequest::single(&x)
                            .masked(mask)
                            .strategy(ExecStrategy::CompiledPlan),
                    )
                    .unwrap();
            }
        }
        assert_eq!(engine.plans.len(), 2);
        // distinct masks beyond the cap evict the least-recently-used
        for u in 0..super::PLAN_CACHE_CAP + 2 {
            let mut mask = PruneMask::all_kept(&net);
            mask.prune(net.prunable_layers()[1], u % 6).unwrap();
            mask.prune(net.prunable_layers()[2], u).unwrap();
            engine
                .run(
                    InferenceRequest::single(&x)
                        .masked(&mask)
                        .strategy(ExecStrategy::CompiledPlan),
                )
                .unwrap();
        }
        assert_eq!(engine.plans.len(), super::PLAN_CACHE_CAP);
    }

    #[test]
    fn batch_matches_per_sample_bitwise() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(65);
        let inputs: Vec<Tensor> = (0..7)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let dense_legacy: Vec<Tensor> = inputs
            .iter()
            .map(|x| net.forward_impl(x).unwrap())
            .collect();
        let dense_unified = engine.run(InferenceRequest::new(&inputs)).unwrap();
        for (a, b) in dense_legacy.iter().zip(dense_unified.outputs()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let masked_legacy: Vec<Tensor> = inputs
            .iter()
            .map(|x| net.forward_masked_from(0, x, &mask).unwrap())
            .collect();
        let masked_unified = engine
            .run(InferenceRequest::new(&inputs).masked(&mask))
            .unwrap();
        for (a, b) in masked_legacy.iter().zip(masked_unified.outputs()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn masked_strategy_without_mask_runs_all_kept() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        let dense = net.forward_impl(&x).unwrap();
        let masked = engine
            .run(InferenceRequest::single(&x).strategy(ExecStrategy::MaskedSkip))
            .unwrap()
            .into_single()
            .unwrap();
        assert_eq!(masked.as_slice(), dense.as_slice());
    }

    #[test]
    fn into_single_rejects_batched_responses() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let inputs = vec![Tensor::ones(&[1, 4, 4]), Tensor::ones(&[1, 4, 4])];
        let resp = engine.run(InferenceRequest::new(&inputs)).unwrap();
        assert!(matches!(resp.into_single(), Err(NnError::Internal(_))));
    }

    #[test]
    fn argmaxes_and_strategy_tags() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let x = Tensor::ones(&[1, 4, 4]);
        let resp = engine.run(InferenceRequest::single(&x)).unwrap();
        assert_eq!(resp.strategy(), ExecStrategy::Dense);
        assert_eq!(resp.argmaxes().len(), 1);
        assert_eq!(resp.argmaxes()[0], net.predict(&x).unwrap());
    }

    #[test]
    fn run_grouped_matches_individual_runs() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(67);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        // a mixed bag: plan f32, plan int8, reference — interleaved
        let reqs: Vec<InferenceRequest<'_>> = vec![
            InferenceRequest::single(&inputs[0])
                .masked(&mask)
                .strategy(ExecStrategy::CompiledPlan),
            InferenceRequest::single(&inputs[1])
                .masked(&mask)
                .precision(Precision::Int8),
            InferenceRequest::single(&inputs[2])
                .masked(&mask)
                .strategy(ExecStrategy::CompiledPlan),
            InferenceRequest::single(&inputs[3])
                .masked(&mask)
                .strategy(ExecStrategy::Reference),
            InferenceRequest::single(&inputs[4])
                .masked(&mask)
                .precision(Precision::Int8),
            InferenceRequest::single(&inputs[5])
                .masked(&mask)
                .strategy(ExecStrategy::CompiledPlan),
        ];
        let individual: Vec<Tensor> = reqs
            .iter()
            .map(|r| {
                let mut fresh = Engine::new(&net);
                fresh.run(*r).unwrap().into_single().unwrap()
            })
            .collect();
        let grouped = engine.run_grouped(&reqs).unwrap();
        assert_eq!(grouped.len(), reqs.len());
        for ((resp, req), expect) in grouped.iter().zip(&reqs).zip(&individual) {
            assert_eq!(resp.strategy(), req.strategy);
            assert_eq!(resp.precision(), req.requested_precision());
            assert_eq!(resp.outputs().len(), 1);
            assert_eq!(resp.outputs()[0].as_slice(), expect.as_slice());
        }
        // the three f32 plan requests shared one compiled plan; int8 a
        // second — not one plan per request
        assert_eq!(engine.plans.len(), 2);
    }

    #[test]
    fn run_grouped_batches_same_plan_requests_together() {
        let net = small_cnn();
        let mask = pruned_mask(&net);
        let mut engine = Engine::new(&net);
        let mut rng = XorShiftRng::new(68);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let reqs: Vec<InferenceRequest<'_>> = inputs
            .iter()
            .map(|x| {
                InferenceRequest::single(x)
                    .masked(&mask)
                    .strategy(ExecStrategy::CompiledPlan)
            })
            .collect();
        // bitwise-equal to one direct batched plan execution (one group)
        let direct = net.compile(&mask).unwrap().forward_batch(&inputs).unwrap();
        let grouped = engine.run_grouped(&reqs).unwrap();
        for (resp, expect) in grouped.iter().zip(&direct) {
            assert_eq!(resp.outputs()[0].as_slice(), expect.as_slice());
        }
    }

    #[test]
    fn run_grouped_handles_empty_and_multi_input_requests() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        assert!(engine.run_grouped(&[]).unwrap().is_empty());
        let mut rng = XorShiftRng::new(69);
        let a: Vec<Tensor> = (0..3)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let b: Vec<Tensor> = (0..2)
            .map(|_| Tensor::uniform(&[1, 4, 4], -1.0, 1.0, &mut rng))
            .collect();
        let reqs = vec![InferenceRequest::new(&a), InferenceRequest::new(&b)];
        let resp = engine.run_grouped(&reqs).unwrap();
        assert_eq!(resp[0].outputs().len(), 3);
        assert_eq!(resp[1].outputs().len(), 2);
        for (out, x) in resp[0]
            .outputs()
            .iter()
            .chain(resp[1].outputs())
            .zip(a.iter().chain(&b))
        {
            assert_eq!(out.argmax(), net.forward_impl(x).unwrap().argmax());
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(ExecStrategy::Dense.name(), "dense");
        assert_eq!(ExecStrategy::MaskedSkip.name(), "masked_skip");
        assert_eq!(ExecStrategy::Reference.name(), "reference");
        assert_eq!(ExecStrategy::CompiledPlan.name(), "compiled_plan");
    }

    #[test]
    fn engine_rejects_bad_input_shape() {
        let net = small_cnn();
        let mut engine = Engine::new(&net);
        let bad = Tensor::ones(&[2, 4, 4]);
        assert!(engine.run(InferenceRequest::single(&bad)).is_err());
    }
}
