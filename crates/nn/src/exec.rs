//! Mask-aware execution engine: structured compute-skipping.
//!
//! The naive way to apply a [`PruneMask`](crate::PruneMask) is to run every
//! layer densely and zero pruned units afterwards — correct, but it spends
//! 100% of the multiply–accumulates regardless of how much was pruned. This
//! module is the engine that actually *skips* the pruned work:
//!
//! * dense layers compute only the kept output rows, and gather only the
//!   kept input columns into each dot product;
//! * conv layers compute only the kept output channels and drop pruned
//!   input channels from the im2col unfold entirely
//!   ([`capnn_tensor::conv2d_masked`], which gathers the kept weights
//!   straight into register-tile panels and runs the same
//!   [`capnn_tensor::conv_gemm_into`] micro-kernel as compiled plans —
//!   a thin per-call-packed wrapper around the panel kernel);
//! * ReLU / pooling pass kept-unit sets through unchanged; Flatten expands
//!   kept channels into kept flat indices (the same bookkeeping
//!   [`Network::compact`](crate::Network::compact) does when it physically
//!   shrinks the model).
//!
//! With fraction `p` pruned on both sides of a layer this does `(1-p)²` of
//! the dense MACs. The output is **value-identical** to the zero-after-dense
//! path: every skipped multiply–accumulate term is exactly `±0.0` (pruned
//! activations are written as exact zeros by construction), adding `±0.0`
//! never changes the value of an f32 accumulation, and the surviving terms
//! keep their original order. Predictions (argmax) are therefore identical.
//!
//! [`ExecScratch`] carries the conv workspace across calls so steady-state
//! masked inference allocates only its output tensors.

use crate::error::NnError;
use crate::layer::{Conv2dLayer, Dense, Layer};
use crate::mask::PruneMask;
use crate::network::{zero_pruned_units, Network};
use capnn_tensor::{conv2d_im2col_scratch, conv2d_masked, ConvScratch, Tensor};

/// Reusable workspace for masked execution: holds the im2col / gathered-
/// weight buffers so repeated forwards are allocation-free after warmup.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    conv: ConvScratch,
}

impl ExecScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Indices of `true` flags.
fn kept_indices(flags: &[bool]) -> Vec<usize> {
    flags
        .iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// Restricts an already-kept index set by a fresh flag vector.
fn intersect_kept(kept: Option<&[usize]>, flags: &[bool]) -> Vec<usize> {
    match kept {
        None => kept_indices(flags),
        Some(k) => k.iter().copied().filter(|&i| flags[i]).collect(),
    }
}

/// Dense forward computing only kept output rows over kept input columns.
///
/// Accumulation starts at the bias and adds weight×input terms in
/// increasing input-index order — exactly the order of
/// [`Dense::forward`] — so kept outputs are value-identical to the dense
/// pass. Pruned outputs are exact zeros.
fn dense_masked(
    d: &Dense,
    x: &Tensor,
    flags: Option<&[bool]>,
    kept_in: Option<&[usize]>,
) -> Result<Tensor, NnError> {
    if flags.is_none() && kept_in.is_none() {
        return d.forward(x);
    }
    if x.len() != d.in_features() {
        return Err(NnError::Config(format!(
            "dense input has {} elements, expected {}",
            x.len(),
            d.in_features()
        )));
    }
    if let Some(f) = flags {
        if f.len() != d.out_features() {
            return Err(NnError::Config(format!(
                "mask has {} flags for dense layer of {} units",
                f.len(),
                d.out_features()
            )));
        }
    }
    let n_in = d.in_features();
    let w = d.weights().as_slice();
    let b = d.bias().as_slice();
    let xs = x.as_slice();
    let mut out = Tensor::zeros(&[d.out_features()]);
    let ov = out.as_mut_slice();
    for (j, o) in ov.iter_mut().enumerate() {
        if let Some(f) = flags {
            if !f[j] {
                continue; // pruned output: stays exactly 0.0
            }
        }
        let row = &w[j * n_in..(j + 1) * n_in];
        let mut acc = b[j];
        match kept_in {
            None => {
                for (&wi, &xi) in row.iter().zip(xs) {
                    acc += wi * xi;
                }
            }
            Some(ki) => {
                for &i in ki {
                    acc += row[i] * xs[i];
                }
            }
        }
        *o = acc;
    }
    Ok(out)
}

/// Conv forward computing only kept output channels over kept input
/// channels, through the shared scratch workspace.
fn conv_masked(
    c: &Conv2dLayer,
    x: &Tensor,
    flags: Option<&[bool]>,
    kept_in: Option<&[usize]>,
    scratch: &mut ConvScratch,
) -> Result<Tensor, NnError> {
    if flags.is_none() && kept_in.is_none() {
        return Ok(conv2d_im2col_scratch(
            x,
            c.weights(),
            Some(c.bias()),
            c.spec(),
            scratch,
        )?);
    }
    if let Some(f) = flags {
        if f.len() != c.spec().out_channels {
            return Err(NnError::Config(format!(
                "mask has {} flags for conv layer of {} channels",
                f.len(),
                c.spec().out_channels
            )));
        }
    }
    let kept_out: Vec<usize> = match flags {
        Some(f) => kept_indices(f),
        None => (0..c.spec().out_channels).collect(),
    };
    let all_in: Vec<usize>;
    let kept_in: &[usize] = match kept_in {
        Some(k) => k,
        None => {
            all_in = (0..c.spec().in_channels).collect();
            &all_in
        }
    };
    Ok(conv2d_masked(
        x,
        c.weights(),
        Some(c.bias()),
        c.spec(),
        &kept_out,
        kept_in,
        scratch,
    )?)
}

/// Runs layers `start..` of `net` on `activation` with structured
/// compute-skipping under `mask`. Semantics match the zero-after-dense
/// reference ([`Network::forward_masked_reference`]): pruned units are
/// exact zeros in every intermediate and final activation.
pub(crate) fn run_masked(
    net: &Network,
    start: usize,
    activation: &Tensor,
    mask: &PruneMask,
    scratch: &mut ExecScratch,
) -> Result<Tensor, NnError> {
    if start > net.len() {
        return Err(NnError::LayerOutOfRange {
            index: start,
            len: net.len(),
        });
    }
    // Telemetry decision is hoisted out of the layer loop: when disabled
    // the whole run pays one relaxed load; when enabled, per-layer timings
    // accumulate locally and flush to the registry once, after the loop.
    let telemetry = capnn_telemetry::enabled();
    let mut timings: Vec<(usize, &'static str, u64)> = Vec::new();
    let mut x = activation.clone();
    // Kept units of the current activation in its "unit view" (channels for
    // CHW, elements for flat); None = everything kept. Entries outside the
    // kept set are exact zeros in `x` by construction.
    let mut kept: Option<Vec<usize>> = None;
    for (i, layer) in net.layers().iter().enumerate().skip(start) {
        let t0 = telemetry.then(std::time::Instant::now);
        match layer {
            Layer::Dense(d) => {
                let flags = mask.layer_flags(i);
                x = dense_masked(d, &x, flags, kept.as_deref())?;
                kept = flags.map(kept_indices);
            }
            Layer::Conv2d(c) => {
                let flags = mask.layer_flags(i);
                x = conv_masked(c, &x, flags, kept.as_deref(), &mut scratch.conv)?;
                kept = flags.map(kept_indices);
            }
            Layer::Flatten => {
                // Expand kept channels into kept flat indices before the
                // shape information is lost.
                if let Some(k) = &kept {
                    if x.dims().len() == 3 {
                        let plane = x.dims()[1] * x.dims()[2];
                        kept = Some(k.iter().flat_map(|&c| c * plane..(c + 1) * plane).collect());
                    }
                }
                x = layer.forward(&x)?;
                if let Some(flags) = mask.layer_flags(i) {
                    zero_pruned_units(&mut x, flags)?;
                    kept = Some(intersect_kept(kept.as_deref(), flags));
                }
            }
            Layer::Relu | Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => {
                // These map zero planes/elements to zeros, so the kept set
                // passes through unchanged. (A mask entry on a non-prunable
                // layer is not produced by PruneMask::all_kept, but honor it
                // for compatibility with hand-built masks.)
                x = layer.forward(&x)?;
                if let Some(flags) = mask.layer_flags(i) {
                    zero_pruned_units(&mut x, flags)?;
                    kept = Some(intersect_kept(kept.as_deref(), flags));
                }
            }
        }
        if let Some(t0) = t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timings.push((i, layer.kind(), ns));
        }
    }
    if telemetry {
        let reg = capnn_telemetry::global();
        for (i, kind, ns) in timings {
            reg.histogram(&format!("exec.layer{i:02}_{kind}_ns"))
                .record(ns);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use capnn_tensor::XorShiftRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn skipping_engine_matches_reference_on_cnn() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1), (6, 1)], &[12, 10], 4, 3)
            .build()
            .unwrap();
        let mut rng = XorShiftRng::new(21);
        let mut mask = PruneMask::all_kept(&net);
        // prune across conv channels and dense neurons (not the output layer)
        let prunable = net.prunable_layers();
        for &(l, u) in &[(0usize, 1usize), (1, 0), (1, 4), (2, 3), (2, 7), (3, 1)] {
            mask.prune(prunable[l], u).unwrap();
        }
        let mut scratch = ExecScratch::new();
        for _ in 0..4 {
            let x = Tensor::uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
            let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
            let fast = run_masked(&net, 0, &x, &mask, &mut scratch).unwrap();
            assert_close(&fast, &reference, 1e-5);
            assert_eq!(fast.argmax(), reference.argmax());
        }
    }

    #[test]
    fn skipping_engine_exact_when_nothing_pruned() {
        let net = NetworkBuilder::mlp(&[6, 10, 4], 2).build().unwrap();
        let mask = PruneMask::all_kept(&net);
        let mut rng = XorShiftRng::new(22);
        let x = Tensor::uniform(&[6], -1.0, 1.0, &mut rng);
        let plain = net.forward_impl(&x).unwrap();
        let mut scratch = ExecScratch::new();
        let fast = run_masked(&net, 0, &x, &mask, &mut scratch).unwrap();
        assert_eq!(fast.as_slice(), plain.as_slice());
    }

    #[test]
    fn pruned_units_are_exact_zeros() {
        let net = NetworkBuilder::mlp(&[5, 8, 8, 3], 9).build().unwrap();
        let mut mask = PruneMask::all_kept(&net);
        let prunable = net.prunable_layers();
        mask.prune(prunable[0], 2).unwrap();
        mask.prune(prunable[1], 5).unwrap();
        let mut rng = XorShiftRng::new(23);
        let x = Tensor::uniform(&[5], -1.0, 1.0, &mut rng);
        // check the intermediate after the first dense layer via a one-layer
        // truncated run: pruned slot must be exactly 0.0
        let first = dense_masked(
            match &net.layers()[prunable[0]] {
                Layer::Dense(d) => d,
                _ => unreachable!(),
            },
            &x,
            mask.layer_flags(prunable[0]),
            None,
        )
        .unwrap();
        assert_eq!(first.as_slice()[2], 0.0);
        // and the full run matches the reference
        let mut scratch = ExecScratch::new();
        let fast = run_masked(&net, 0, &x, &mask, &mut scratch).unwrap();
        let reference = net.forward_masked_reference_from(0, &x, &mask).unwrap();
        assert_close(&fast, &reference, 1e-5);
    }

    #[test]
    fn dense_masked_rejects_wrong_flag_count() {
        let mut rng = XorShiftRng::new(1);
        let d = Dense::new_random(4, 3, &mut rng);
        let x = Tensor::zeros(&[4]);
        let flags = vec![true; 2];
        assert!(dense_masked(&d, &x, Some(&flags), None).is_err());
    }
}
