//! Layer zoo: dense, 2-D convolution, ReLU, max-pool and flatten.
//!
//! Layers operate on a single sample at a time (dense inputs are rank 1,
//! convolutional inputs are CHW). Batching is a loop in the trainer — the
//! networks in this reproduction are small and per-sample execution keeps the
//! masking and activation-tap logic simple and obviously correct.

use crate::error::NnError;
use capnn_tensor::{
    conv2d_im2col_scratch, max_pool2d, Conv2dSpec, ConvScratch, PoolSpec, Tensor, XorShiftRng,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread im2col workspace shared by every [`Conv2dLayer::forward`]
    /// call, so repeated inference (compacted models, eval sweeps) does not
    /// re-allocate the unfold buffers on each layer of each sample.
    static CONV_FWD_SCRATCH: RefCell<ConvScratch> = RefCell::new(ConvScratch::new());
}

/// A fully-connected layer with weights stored `[out_features, in_features]`.
///
/// # Examples
///
/// ```
/// use capnn_nn::Dense;
/// use capnn_tensor::{Tensor, XorShiftRng};
///
/// let mut rng = XorShiftRng::new(1);
/// let layer = Dense::new_random(4, 2, &mut rng);
/// assert_eq!(layer.out_features(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
}

impl Dense {
    /// Creates a dense layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `weights` is not rank 2 or `bias` does
    /// not match the output dimension.
    pub fn new(weights: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weights.shape().rank() != 2 {
            return Err(NnError::Config(format!(
                "dense weights must be rank 2, got {}",
                weights.shape()
            )));
        }
        if bias.len() != weights.dims()[0] {
            return Err(NnError::Config(format!(
                "dense bias length {} does not match {} output features",
                bias.len(),
                weights.dims()[0]
            )));
        }
        Ok(Self { weights, bias })
    }

    /// Creates a dense layer with He-initialized weights and zero biases.
    pub fn new_random(in_features: usize, out_features: usize, rng: &mut XorShiftRng) -> Self {
        let std = (2.0 / in_features.max(1) as f32).sqrt();
        Self {
            weights: Tensor::randn(&[out_features, in_features], std, rng),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weights.dims()[1]
    }

    /// Number of output features (prunable units).
    pub fn out_features(&self) -> usize {
        self.weights.dims()[0]
    }

    /// The `[out, in]` weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable access to the weight matrix (used by the trainer and by
    /// weight-editing baselines).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Simultaneous mutable access to `(weights, bias)` — needed by
    /// optimizers that update both in one pass.
    pub fn params_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.weights, &mut self.bias)
    }

    /// Forward pass: `y = W x + b` for a rank-1 input.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` does not have `in_features` elements.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, NnError> {
        if x.len() != self.in_features() {
            return Err(NnError::Config(format!(
                "dense input has {} elements, expected {}",
                x.len(),
                self.in_features()
            )));
        }
        let n_in = self.in_features();
        let mut out = self.bias.clone();
        let w = self.weights.as_slice();
        let xs = x.as_slice();
        let ov = out.as_mut_slice();
        for (j, o) in ov.iter_mut().enumerate() {
            let row = &w[j * n_in..(j + 1) * n_in];
            let mut acc = *o;
            for (&wi, &xi) in row.iter().zip(xs) {
                acc += wi * xi;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Backward pass: given the cached input and `dL/dy`, returns
    /// (`dL/dx`, parameter gradients).
    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, LayerGrads) {
        let n_in = self.in_features();
        let n_out = self.out_features();
        let mut dx = Tensor::zeros(&[n_in]);
        let mut dw = Tensor::zeros(&[n_out, n_in]);
        let w = self.weights.as_slice();
        let xs = x.as_slice();
        let dys = dy.as_slice();
        {
            let dxv = dx.as_mut_slice();
            let dwv = dw.as_mut_slice();
            for j in 0..n_out {
                let g = dys[j];
                if g == 0.0 {
                    continue;
                }
                let row = &w[j * n_in..(j + 1) * n_in];
                let drow = &mut dwv[j * n_in..(j + 1) * n_in];
                for i in 0..n_in {
                    dxv[i] += row[i] * g;
                    drow[i] = xs[i] * g;
                }
            }
        }
        (dx, LayerGrads { dw, db: dy.clone() })
    }
}

/// A 2-D convolutional layer (square kernels, CHW activations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2dLayer {
    spec: Conv2dSpec,
    weights: Tensor,
    bias: Tensor,
}

impl Conv2dLayer {
    /// Creates a convolutional layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the weight or bias shape does not match
    /// `spec`.
    pub fn new(spec: Conv2dSpec, weights: Tensor, bias: Tensor) -> Result<Self, NnError> {
        let expected = [
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ];
        if weights.dims() != expected {
            return Err(NnError::Config(format!(
                "conv weights {} do not match spec {:?}",
                weights.shape(),
                spec
            )));
        }
        if bias.len() != spec.out_channels {
            return Err(NnError::Config(format!(
                "conv bias length {} does not match {} output channels",
                bias.len(),
                spec.out_channels
            )));
        }
        Ok(Self {
            spec,
            weights,
            bias,
        })
    }

    /// Creates a convolutional layer with He-initialized weights.
    pub fn new_random(spec: Conv2dSpec, rng: &mut XorShiftRng) -> Self {
        let fan_in = (spec.in_channels * spec.kernel * spec.kernel).max(1);
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            weights: Tensor::randn(
                &[
                    spec.out_channels,
                    spec.in_channels,
                    spec.kernel,
                    spec.kernel,
                ],
                std,
                rng,
            ),
            bias: Tensor::zeros(&[spec.out_channels]),
            spec,
        }
    }

    /// The convolution spec.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The `[out_c, in_c, k, k]` weight tensor.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable access to the weights.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Simultaneous mutable access to `(weights, bias)` — needed by
    /// optimizers that update both in one pass.
    pub fn params_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.weights, &mut self.bias)
    }

    /// Forward pass on a CHW input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape does not match the spec.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, NnError> {
        CONV_FWD_SCRATCH.with(|scratch| {
            Ok(conv2d_im2col_scratch(
                x,
                &self.weights,
                Some(&self.bias),
                &self.spec,
                &mut scratch.borrow_mut(),
            )?)
        })
    }

    /// Backward pass: given the cached input and `dL/dy` (CHW), returns
    /// (`dL/dx`, parameter gradients). Direct loops — exactness over speed.
    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, LayerGrads) {
        let s = &self.spec;
        let (h, w) = (x.dims()[1], x.dims()[2]);
        let (oh, ow) = s.output_hw(h, w);
        let k = s.kernel;
        let mut dx = Tensor::zeros(&[s.in_channels, h, w]);
        let mut dw = Tensor::zeros(&[s.out_channels, s.in_channels, k, k]);
        let mut db = Tensor::zeros(&[s.out_channels]);
        let xv = x.as_slice();
        let wv = self.weights.as_slice();
        let dyv = dy.as_slice();
        let dxv = dx.as_mut_slice();
        let dwv = dw.as_mut_slice();
        let dbv = db.as_mut_slice();
        for oc in 0..s.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dyv[(oc * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    dbv[oc] += g;
                    for ic in 0..s.in_channels {
                        for ky in 0..k {
                            let iy = (oy * s.stride + ky) as isize - s.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s.stride + kx) as isize - s.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let wi = ((oc * s.in_channels + ic) * k + ky) * k + kx;
                                let ii = (ic * h + iy as usize) * w + ix as usize;
                                dwv[wi] += xv[ii] * g;
                                dxv[ii] += wv[wi] * g;
                            }
                        }
                    }
                }
            }
        }
        (dx, LayerGrads { dw, db })
    }
}

/// Parameter gradients of a dense or convolutional layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// Gradient of the weight tensor (same shape as the weights).
    pub dw: Tensor,
    /// Gradient of the bias vector.
    pub db: Tensor,
}

/// One layer of a [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer; its output features are prunable *neurons*.
    Dense(Dense),
    /// Convolutional layer; its output channels are prunable *channels*.
    Conv2d(Conv2dLayer),
    /// Rectified linear unit, elementwise.
    Relu,
    /// Max pooling over CHW activations.
    MaxPool2d(PoolSpec),
    /// Average pooling over CHW activations.
    AvgPool2d(PoolSpec),
    /// Reshape CHW activations to a rank-1 vector.
    Flatten,
}

impl Layer {
    /// Forward pass for a single sample.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Conv2d(c) => c.forward(x),
            Layer::Relu => Ok(x.map(|v| v.max(0.0))),
            Layer::MaxPool2d(spec) => Ok(max_pool2d(x, spec)?.0),
            Layer::AvgPool2d(spec) => avg_pool2d(x, spec),
            Layer::Flatten => Ok(x.reshape(&[x.len()])?),
        }
    }

    /// Backward pass: given the cached *input* to this layer and the gradient
    /// of the loss with respect to this layer's *output*, returns the
    /// gradient with respect to the input and, for parameterized layers, the
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if the cached input is inconsistent with the layer.
    pub fn backward(
        &self,
        x: &Tensor,
        dy: &Tensor,
    ) -> Result<(Tensor, Option<LayerGrads>), NnError> {
        match self {
            Layer::Dense(d) => {
                let (dx, g) = d.backward(x, dy);
                Ok((dx, Some(g)))
            }
            Layer::Conv2d(c) => {
                let (dx, g) = c.backward(x, dy);
                Ok((dx, Some(g)))
            }
            Layer::Relu => {
                let dx = x.zip_map(dy, |xi, gi| if xi > 0.0 { gi } else { 0.0 })?;
                Ok((dx, None))
            }
            Layer::MaxPool2d(spec) => {
                let (_, argmax) = max_pool2d(x, spec)?;
                let mut dx = Tensor::zeros(x.dims());
                let dxv = dx.as_mut_slice();
                for (o, &src) in argmax.iter().enumerate() {
                    dxv[src] += dy.as_slice()[o];
                }
                Ok((dx, None))
            }
            Layer::AvgPool2d(spec) => {
                let (c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                let (oh, ow) = spec.output_hw(h, w);
                let inv = 1.0 / (spec.window * spec.window) as f32;
                let mut dx = Tensor::zeros(x.dims());
                let dxv = dx.as_mut_slice();
                let dyv = dy.as_slice();
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = dyv[(ch * oh + oy) * ow + ox] * inv;
                            for ky in 0..spec.window {
                                for kx in 0..spec.window {
                                    let iy = oy * spec.stride + ky;
                                    let ix = ox * spec.stride + kx;
                                    dxv[(ch * h + iy) * w + ix] += g;
                                }
                            }
                        }
                    }
                }
                Ok((dx, None))
            }
            Layer::Flatten => Ok((dy.reshape(x.dims())?, None)),
        }
    }

    /// Output shape for an input of shape `in_dims`, without running the
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `in_dims` is incompatible with the layer.
    pub fn output_shape(&self, in_dims: &[usize]) -> Result<Vec<usize>, NnError> {
        match self {
            Layer::Dense(d) => {
                let volume: usize = in_dims.iter().product();
                if in_dims.len() != 1 || volume != d.in_features() {
                    return Err(NnError::Config(format!(
                        "dense layer expects [{}], got {in_dims:?}",
                        d.in_features()
                    )));
                }
                Ok(vec![d.out_features()])
            }
            Layer::Conv2d(c) => {
                if in_dims.len() != 3 || in_dims[0] != c.spec().in_channels {
                    return Err(NnError::Config(format!(
                        "conv layer expects [{}, h, w], got {in_dims:?}",
                        c.spec().in_channels
                    )));
                }
                let (oh, ow) = c.spec().output_hw(in_dims[1], in_dims[2]);
                Ok(vec![c.spec().out_channels, oh, ow])
            }
            Layer::Relu => Ok(in_dims.to_vec()),
            Layer::MaxPool2d(spec) | Layer::AvgPool2d(spec) => {
                if in_dims.len() != 3 {
                    return Err(NnError::Config(format!(
                        "pool expects CHW input, got {in_dims:?}"
                    )));
                }
                let (oh, ow) = spec.output_hw(in_dims[1], in_dims[2]);
                Ok(vec![in_dims[0], oh, ow])
            }
            Layer::Flatten => Ok(vec![in_dims.iter().product()]),
        }
    }

    /// Number of prunable output units: dense features or conv channels.
    /// `None` for layers without parameters.
    pub fn unit_count(&self) -> Option<usize> {
        match self {
            Layer::Dense(d) => Some(d.out_features()),
            Layer::Conv2d(c) => Some(c.spec().out_channels),
            _ => None,
        }
    }

    /// Number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights().len() + d.bias().len(),
            Layer::Conv2d(c) => c.weights().len() + c.bias().len(),
            _ => 0,
        }
    }

    /// A short human-readable kind tag, e.g. `"dense"`, `"conv"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Conv2d(_) => "conv",
            Layer::Relu => "relu",
            Layer::MaxPool2d(_) => "maxpool",
            Layer::AvgPool2d(_) => "avgpool",
            Layer::Flatten => "flatten",
        }
    }
}

/// Average pooling over a CHW tensor (no indices needed for backprop —
/// gradients spread evenly over the window).
fn avg_pool2d(x: &Tensor, spec: &PoolSpec) -> Result<Tensor, NnError> {
    if x.shape().rank() != 3 {
        return Err(NnError::Config(format!(
            "avg-pool expects CHW input, got {}",
            x.shape()
        )));
    }
    let (c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    if h < spec.window || w < spec.window {
        return Err(NnError::Config(format!(
            "avg-pool window {} larger than input {h}x{w}",
            spec.window
        )));
    }
    let (oh, ow) = spec.output_hw(h, w);
    let inv = 1.0 / (spec.window * spec.window) as f32;
    let mut out = Tensor::zeros(&[c, oh, ow]);
    let xv = x.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        acc += xv[(ch * h + iy) * w + ix];
                    }
                }
                ov[(ch * oh + oy) * ow + ox] = acc * inv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        layer: &Layer,
        x: &Tensor,
        param_probe: Option<(usize, bool)>, // (flat index, probe bias instead of weight)
    ) {
        // Loss = sum of outputs; analytic gradient vs central difference.
        let y = layer.forward(x).unwrap();
        let dy = Tensor::ones(y.dims());
        let (dx, grads) = layer.backward(x, &dy).unwrap();

        let eps = 1e-3;
        // check input gradient at a few positions
        for probe in 0..x.len().min(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let fp = layer.forward(&xp).unwrap().sum();
            let fm = layer.forward(&xm).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = dx.as_slice()[probe];
            assert!(
                (num - ana).abs() < 2e-2,
                "input grad mismatch at {probe}: numeric {num} vs analytic {ana}"
            );
        }

        if let (Some((idx, probe_bias)), Some(g)) = (param_probe, grads) {
            let perturbed = |delta: f32| -> f32 {
                let mut l2 = layer.clone();
                match &mut l2 {
                    Layer::Dense(d) => {
                        if probe_bias {
                            d.bias_mut().as_mut_slice()[idx] += delta;
                        } else {
                            d.weights_mut().as_mut_slice()[idx] += delta;
                        }
                    }
                    Layer::Conv2d(c) => {
                        if probe_bias {
                            c.bias_mut().as_mut_slice()[idx] += delta;
                        } else {
                            c.weights_mut().as_mut_slice()[idx] += delta;
                        }
                    }
                    _ => unreachable!(),
                }
                l2.forward(x).unwrap().sum()
            };
            let num = (perturbed(eps) - perturbed(-eps)) / (2.0 * eps);
            let ana = if probe_bias {
                g.db.as_slice()[idx]
            } else {
                g.dw.as_slice()[idx]
            };
            assert!(
                (num - ana).abs() < 2e-2,
                "param grad mismatch: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dense_forward_known() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let d = Dense::new(w, b).unwrap();
        let y = d
            .forward(&Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap())
            .unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn dense_rejects_bad_params() {
        assert!(Dense::new(Tensor::zeros(&[4]), Tensor::zeros(&[4])).is_err());
        assert!(Dense::new(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3])).is_err());
        let d = Dense::new(Tensor::zeros(&[2, 3]), Tensor::zeros(&[2])).unwrap();
        assert!(d.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut rng = XorShiftRng::new(7);
        let d = Dense::new_random(5, 3, &mut rng);
        let x = Tensor::uniform(&[5], -1.0, 1.0, &mut rng);
        finite_diff_check(&Layer::Dense(d.clone()), &x, Some((4, false)));
        finite_diff_check(&Layer::Dense(d), &x, Some((1, true)));
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let mut rng = XorShiftRng::new(8);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let c = Conv2dLayer::new_random(spec, &mut rng);
        let x = Tensor::uniform(&[2, 5, 5], -1.0, 1.0, &mut rng);
        finite_diff_check(&Layer::Conv2d(c.clone()), &x, Some((7, false)));
        finite_diff_check(&Layer::Conv2d(c), &x, Some((2, true)));
    }

    #[test]
    fn relu_forward_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = Layer::Relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let dy = Tensor::ones(&[3]);
        let (dx, g) = Layer::Relu.backward(&x, &dy).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0]);
        assert!(g.is_none());
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 4.0, 3.0, 2.0], &[1, 2, 2]).unwrap();
        let layer = Layer::MaxPool2d(PoolSpec::new(2, 2));
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let (dx, _) = layer.backward(&x, &Tensor::ones(&[1, 1, 1])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let layer = Layer::Flatten;
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.dims(), &[24]);
        let (dx, _) = layer.backward(&x, &Tensor::ones(&[24])).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn output_shape_propagation() {
        let mut rng = XorShiftRng::new(1);
        let conv = Layer::Conv2d(Conv2dLayer::new_random(
            Conv2dSpec::new(3, 8, 3, 1, 1),
            &mut rng,
        ));
        assert_eq!(conv.output_shape(&[3, 16, 16]).unwrap(), vec![8, 16, 16]);
        assert!(conv.output_shape(&[2, 16, 16]).is_err());

        let pool = Layer::MaxPool2d(PoolSpec::new(2, 2));
        assert_eq!(pool.output_shape(&[8, 16, 16]).unwrap(), vec![8, 8, 8]);
        assert!(pool.output_shape(&[16, 16]).is_err());

        let dense = Layer::Dense(Dense::new_random(10, 4, &mut rng));
        assert_eq!(dense.output_shape(&[10]).unwrap(), vec![4]);
        assert!(dense.output_shape(&[11]).is_err());

        assert_eq!(Layer::Flatten.output_shape(&[2, 2, 2]).unwrap(), vec![8]);
        assert_eq!(Layer::Relu.output_shape(&[5]).unwrap(), vec![5]);
    }

    #[test]
    fn unit_and_param_counts() {
        let mut rng = XorShiftRng::new(1);
        let d = Layer::Dense(Dense::new_random(3, 4, &mut rng));
        assert_eq!(d.unit_count(), Some(4));
        assert_eq!(d.param_count(), 3 * 4 + 4);
        let c = Layer::Conv2d(Conv2dLayer::new_random(
            Conv2dSpec::new(2, 5, 3, 1, 1),
            &mut rng,
        ));
        assert_eq!(c.unit_count(), Some(5));
        assert_eq!(c.param_count(), 5 * 2 * 9 + 5);
        assert_eq!(Layer::Relu.unit_count(), None);
        assert_eq!(Layer::Flatten.param_count(), 0);
    }

    #[test]
    fn layer_kinds() {
        assert_eq!(Layer::Relu.kind(), "relu");
        assert_eq!(Layer::Flatten.kind(), "flatten");
        assert_eq!(Layer::MaxPool2d(PoolSpec::new(2, 2)).kind(), "maxpool");
        assert_eq!(Layer::AvgPool2d(PoolSpec::new(2, 2)).kind(), "avgpool");
    }

    #[test]
    fn avgpool_forward_known() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]).unwrap();
        let layer = Layer::AvgPool2d(PoolSpec::new(2, 2));
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        assert_eq!(layer.output_shape(&[1, 2, 2]).unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]).unwrap();
        let layer = Layer::AvgPool2d(PoolSpec::new(2, 2));
        let (dx, g) = layer.backward(&x, &Tensor::ones(&[1, 1, 1])).unwrap();
        assert!(g.is_none());
        assert_eq!(dx.as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn avgpool_gradient_matches_finite_difference() {
        let mut rng = XorShiftRng::new(13);
        let x = Tensor::uniform(&[2, 4, 4], -1.0, 1.0, &mut rng);
        finite_diff_check(&Layer::AvgPool2d(PoolSpec::new(2, 2)), &x, None);
    }

    #[test]
    fn avgpool_rejects_bad_input() {
        let layer = Layer::AvgPool2d(PoolSpec::new(3, 1));
        assert!(layer.forward(&Tensor::zeros(&[4, 4])).is_err());
        assert!(layer.forward(&Tensor::zeros(&[1, 2, 2])).is_err());
    }
}
