//! Topology builders: plain MLPs and VGG-style CNNs.
//!
//! The paper evaluates on VGG-16 (13 conv + 3 FC layers, ReLU after each,
//! max-pool between blocks). [`VggConfig`] builds that topology *shape* at a
//! configurable scale — the reproduction's substitute for the ImageNet-scale
//! original (see DESIGN.md).

use crate::error::NnError;
use crate::layer::{Conv2dLayer, Dense, Layer};
use crate::network::Network;
use capnn_tensor::{Conv2dSpec, PoolSpec, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Declarative description of a VGG-style network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VggConfig {
    /// Input shape `[channels, height, width]`.
    pub input: [usize; 3],
    /// Conv blocks: `(out_channels, conv_layers_in_block)`; each block ends
    /// with a 2×2 max pool.
    pub blocks: Vec<(usize, usize)>,
    /// Hidden fully-connected widths (the classifier head before the output
    /// layer).
    pub dense: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
}

impl VggConfig {
    /// A scaled-down VGG-16 analog: five conv blocks and two hidden FC
    /// layers, for 32×32 inputs. The prunable tail (last 3 conv + 2 FC +
    /// output) mirrors the paper's "last 6 layers of VGG-16".
    pub fn vgg_mini(classes: usize) -> Self {
        Self {
            input: [1, 32, 32],
            blocks: vec![(8, 1), (16, 1), (24, 2), (32, 2)],
            dense: vec![96, 64],
            classes,
        }
    }

    /// An even smaller config for fast tests.
    pub fn vgg_tiny(classes: usize) -> Self {
        Self {
            input: [1, 16, 16],
            blocks: vec![(6, 1), (12, 1)],
            dense: vec![32, 24],
            classes,
        }
    }

    /// The true VGG-16 topology (13 conv layers in five blocks of
    /// 2/2/3/3/3, two 4096-wide FC layers) with every width divided by
    /// `width_divisor` — the closest runnable analog of the paper's exact
    /// network. `width_divisor = 1` reproduces VGG-16's layer widths for
    /// 224×224 RGB inputs (enormous on CPU); 8–16 is practical.
    ///
    /// # Panics
    ///
    /// Panics if `width_divisor == 0`.
    pub fn vgg16_scaled(classes: usize, width_divisor: usize) -> Self {
        assert!(width_divisor > 0, "width_divisor must be positive");
        let d = |w: usize| (w / width_divisor).max(1);
        // Five pool layers need the input to survive five halvings, so the
        // spatial divisor saturates at 7 (224 / 7 = 32 → 1×1 after pooling).
        let side = 224 / width_divisor.clamp(1, 7);
        Self {
            input: [3, side, side],
            blocks: vec![
                (d(64), 2),
                (d(128), 2),
                (d(256), 3),
                (d(512), 3),
                (d(512), 3),
            ],
            dense: vec![d(4096), d(4096)],
            classes,
        }
    }
}

/// Builder producing validated [`Network`]s.
///
/// # Examples
///
/// ```
/// use capnn_nn::{NetworkBuilder, VggConfig};
///
/// let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(4), 7).build().unwrap();
/// assert_eq!(net.num_classes(), 4);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    layers: Vec<Layer>,
    input_dims: Vec<usize>,
    error: Option<NnError>,
}

impl NetworkBuilder {
    /// Starts an empty builder for inputs of shape `input_dims`.
    pub fn new(input_dims: &[usize]) -> Self {
        Self {
            layers: Vec::new(),
            input_dims: input_dims.to_vec(),
            error: None,
        }
    }

    /// Builds an MLP with ReLU between layers: `widths[0]` is the input
    /// size, the last element the class count.
    ///
    /// The returned builder carries an error (surfaced by `build`) if
    /// `widths` has fewer than two entries.
    pub fn mlp(widths: &[usize], seed: u64) -> Self {
        let mut rng = XorShiftRng::new(seed);
        if widths.len() < 2 {
            let mut b = Self::new(&[0]);
            b.error = Some(NnError::Config(
                "mlp needs at least input and output widths".into(),
            ));
            return b;
        }
        let mut b = Self::new(&[widths[0]]);
        for w in widths.windows(2) {
            b = b.dense(w[0], w[1], &mut rng);
            b = b.relu();
        }
        // the final relu is dropped: logits must be signed
        b.layers.pop();
        b
    }

    /// Builds a CNN: conv blocks (each `(channels, layer_count)` followed by
    /// a 2×2 pool), then flatten, then dense hidden layers, then the output
    /// layer.
    pub fn cnn(
        input: &[usize],
        blocks: &[(usize, usize)],
        dense_widths: &[usize],
        classes: usize,
        seed: u64,
    ) -> Self {
        let mut rng = XorShiftRng::new(seed);
        let mut b = Self::new(input);
        if input.len() != 3 {
            b.error = Some(NnError::Config(format!(
                "cnn input must be [c, h, w], got {input:?}"
            )));
            return b;
        }
        let mut channels = input[0];
        let (mut h, mut w) = (input[1], input[2]);
        for &(out_c, n_layers) in blocks {
            for _ in 0..n_layers {
                b = b.conv(channels, out_c, 3, 1, 1, &mut rng).relu();
                channels = out_c;
            }
            if h >= 2 && w >= 2 {
                b = b.max_pool(2, 2);
                h /= 2;
                w /= 2;
            }
        }
        b = b.flatten();
        let mut in_features = channels * h * w;
        for &width in dense_widths {
            b = b.dense(in_features, width, &mut rng).relu();
            in_features = width;
        }
        b.dense(in_features, classes, &mut rng)
    }

    /// Builds the VGG-style topology described by `config`.
    pub fn vgg(config: &VggConfig, seed: u64) -> Self {
        Self::cnn(
            &config.input,
            &config.blocks,
            &config.dense,
            config.classes,
            seed,
        )
    }

    /// Appends a randomly initialized dense layer.
    pub fn dense(mut self, in_features: usize, out_features: usize, rng: &mut XorShiftRng) -> Self {
        self.layers.push(Layer::Dense(Dense::new_random(
            in_features,
            out_features,
            rng,
        )));
        self
    }

    /// Appends a randomly initialized 3×3-style conv layer with explicit
    /// geometry.
    pub fn conv(
        mut self,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut XorShiftRng,
    ) -> Self {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding);
        self.layers
            .push(Layer::Conv2d(Conv2dLayer::new_random(spec, rng)));
        self
    }

    /// Appends a ReLU.
    pub fn relu(mut self) -> Self {
        self.layers.push(Layer::Relu);
        self
    }

    /// Appends a max-pool layer.
    pub fn max_pool(mut self, window: usize, stride: usize) -> Self {
        self.layers
            .push(Layer::MaxPool2d(PoolSpec::new(window, stride)));
        self
    }

    /// Appends an average-pool layer.
    pub fn avg_pool(mut self, window: usize, stride: usize) -> Self {
        self.layers
            .push(Layer::AvgPool2d(PoolSpec::new(window, stride)));
        self
    }

    /// Appends a flatten layer.
    pub fn flatten(mut self) -> Self {
        self.layers.push(Layer::Flatten);
        self
    }

    /// Finalizes the network, validating shape propagation end to end.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the builder recorded an error or the
    /// layer stack is shape-inconsistent.
    pub fn build(self) -> Result<Network, NnError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Network::new(self.layers, &self.input_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_topology() {
        let net = NetworkBuilder::mlp(&[4, 8, 6, 3], 1).build().unwrap();
        // dense relu dense relu dense
        assert_eq!(net.len(), 5);
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.prunable_layers().len(), 3);
    }

    #[test]
    fn mlp_requires_two_widths() {
        assert!(NetworkBuilder::mlp(&[4], 1).build().is_err());
    }

    #[test]
    fn cnn_shapes_propagate() {
        let net = NetworkBuilder::cnn(&[3, 16, 16], &[(8, 2), (16, 1)], &[32], 10, 1)
            .build()
            .unwrap();
        let shapes = net.layer_shapes().unwrap();
        assert_eq!(*shapes.last().unwrap(), vec![10]);
        // two blocks of pooling: 16 → 8 → 4
        assert!(shapes.iter().any(|s| s == &vec![16, 4, 4]));
    }

    #[test]
    fn cnn_rejects_non_chw_input() {
        assert!(NetworkBuilder::cnn(&[16, 16], &[(8, 1)], &[32], 10, 1)
            .build()
            .is_err());
    }

    #[test]
    fn vgg_mini_structure_matches_paper_shape() {
        let cfg = VggConfig::vgg_mini(10);
        let net = NetworkBuilder::vgg(&cfg, 42).build().unwrap();
        assert_eq!(net.num_classes(), 10);
        // conv layers = sum of block layer counts; dense = 2 hidden + output
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_)))
            .count();
        let denses = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Dense(_)))
            .count();
        assert_eq!(convs, 6);
        assert_eq!(denses, 3);
        // the "last 6 layers" tail: 3 conv + 2 fc + output
        assert_eq!(net.prunable_tail(6).len(), 6);
    }

    #[test]
    fn vgg16_scaled_matches_paper_topology() {
        let cfg = VggConfig::vgg16_scaled(10, 16);
        let net = NetworkBuilder::vgg(&cfg, 1).build().unwrap();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_)))
            .count();
        let denses = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Dense(_)))
            .count();
        // the paper: 13 convolutional + 3 fully-connected layers
        assert_eq!(convs, 13);
        assert_eq!(denses, 3);
        assert_eq!(net.num_classes(), 10);
        // "last 6 layers" = 3 conv + 2 FC + output, as in §V
        let tail = net.prunable_tail(6);
        assert_eq!(tail.len(), 6);
        let kinds: Vec<&str> = tail.iter().map(|&i| net.layers()[i].kind()).collect();
        assert_eq!(kinds, ["conv", "conv", "conv", "dense", "dense", "dense"]);
    }

    #[test]
    #[should_panic(expected = "width_divisor must be positive")]
    fn vgg16_zero_divisor_panics() {
        VggConfig::vgg16_scaled(10, 0);
    }

    #[test]
    fn vgg_tiny_forward_runs() {
        let cfg = VggConfig::vgg_tiny(5);
        let net = NetworkBuilder::vgg(&cfg, 3).build().unwrap();
        let out = net
            .forward_impl(&capnn_tensor::Tensor::ones(&[1, 16, 16]))
            .unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn mlp_output_layer_has_no_relu() {
        let net = NetworkBuilder::mlp(&[2, 4, 2], 1).build().unwrap();
        assert_eq!(net.layers().last().unwrap().kind(), "dense");
    }

    #[test]
    fn manual_builder_chain() {
        let mut rng = XorShiftRng::new(8);
        let net = NetworkBuilder::new(&[1, 8, 8])
            .conv(1, 4, 3, 1, 1, &mut rng)
            .relu()
            .max_pool(2, 2)
            .flatten()
            .dense(4 * 4 * 4, 3, &mut rng)
            .build()
            .unwrap();
        assert_eq!(net.num_classes(), 3);
    }

    #[test]
    fn inconsistent_stack_rejected() {
        let mut rng = XorShiftRng::new(8);
        let result = NetworkBuilder::new(&[1, 8, 8])
            .conv(1, 4, 3, 1, 1, &mut rng)
            .dense(99, 3, &mut rng) // wrong: conv output is CHW, and wrong size
            .build();
        assert!(result.is_err());
    }
}
