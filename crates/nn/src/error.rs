//! Error type for network construction and execution.

use capnn_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by network construction, execution or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (almost always a shape mismatch
    /// between a layer's parameters and its input).
    Tensor(TensorError),
    /// The network or a layer was configured inconsistently.
    Config(String),
    /// A layer index was out of range for the network.
    LayerOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of layers in the network.
        len: usize,
    },
    /// A stored artifact's envelope declares an on-disk format version
    /// this build cannot read. Checked before the payload is decoded, so
    /// old artifacts fail with this typed error instead of whatever field
    /// mismatch the payload happens to hit first.
    UnsupportedFormatVersion {
        /// Artifact kind from the envelope, e.g. `capnn-network`.
        kind: String,
        /// Version declared by the stored envelope.
        found: u32,
        /// The version this build reads ([`crate::FORMAT_VERSION`]).
        supported: u32,
    },
    /// An internal invariant was violated — a bug in this crate, not in the
    /// caller's input. Public APIs surface this instead of panicking.
    Internal(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Config(msg) => write!(f, "invalid network configuration: {msg}"),
            NnError::LayerOutOfRange { index, len } => {
                write!(
                    f,
                    "layer index {index} out of range for network of {len} layers"
                )
            }
            NnError::UnsupportedFormatVersion {
                kind,
                found,
                supported,
            } => {
                write!(
                    f,
                    "unsupported {kind} format version {found} (this build reads version {supported})"
                )
            }
            NnError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_tensor::ShapeError;

    #[test]
    fn display_variants() {
        let e = NnError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = NnError::LayerOutOfRange { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        let e: NnError = TensorError::from(ShapeError::new("x")).into();
        assert!(e.to_string().contains("tensor error"));
        let e = NnError::Internal("lost output".into());
        assert!(e.to_string().contains("internal invariant"));
        let e = NnError::UnsupportedFormatVersion {
            kind: "capnn-plan".into(),
            found: 1,
            supported: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("capnn-plan") && msg.contains('1') && msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
