//! From-scratch CNN substrate for the CAP'NN reproduction.
//!
//! The paper prunes an *already-trained* VGG-16. Because this reproduction is
//! offline and dependency-free, the trained network is produced by this
//! crate: a small layer zoo ([`Dense`], [`Conv2dLayer`], ReLU, max-pool,
//! flatten), a [`Network`] container with activation taps, a backprop
//! [`Trainer`], and — the part CAP'NN actually needs — structured
//! [`PruneMask`]s that zero out neurons (dense units) or channels (conv
//! feature maps) *without retraining*, plus exact remaining-parameter
//! accounting ([`model_size`]).
//!
//! # Examples
//!
//! ```
//! use capnn_nn::{Engine, InferenceRequest, NetworkBuilder};
//!
//! let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
//! let mut engine = Engine::new(&net);
//! let out = engine
//!     .run(InferenceRequest::single(&capnn_tensor::Tensor::ones(&[4])))
//!     .unwrap()
//!     .into_single()
//!     .unwrap();
//! assert_eq!(out.len(), 3);
//! ```

mod builder;
mod engine;
mod error;
mod exec;
mod io;
mod layer;
mod loss;
mod mask;
mod network;
pub mod plan;
mod size;
mod train;

pub use builder::{NetworkBuilder, VggConfig};
pub use engine::{Engine, ExecStrategy, InferenceRequest, InferenceResponse};
pub use error::NnError;
pub use exec::ExecScratch;
pub use io::{
    load_network, mask_from_json, mask_to_json, network_from_json, network_to_json, plan_from_json,
    plan_to_json, save_network, FORMAT_VERSION,
};
pub use layer::{Conv2dLayer, Dense, Layer, LayerGrads};
pub use loss::{cross_entropy_loss, softmax};
pub use mask::PruneMask;
pub use network::{Network, PrunableUnit};
pub use plan::{CompiledPlan, PanelPool, PlanScratch, Precision, Sparsity};
pub use size::{model_size, ParamCount};
pub use train::{evaluate_accuracy, TrainReport, Trainer, TrainerConfig};
