//! Device-side inference throughput: masked execution of the full model vs
//! the compacted (physically smaller) model the cloud actually ships — the
//! latter is the paper's model-size payoff in compute form.
//!
//! The `masked_model_*pct` variants sweep paper-like tail prune ratios
//! (25/50/75%): with the compute-skipping engine these should scale well
//! below the dense forward, roughly `(1-p)²` per masked layer.

use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{
    Engine, ExecScratch, InferenceRequest, Network, NetworkBuilder, PruneMask, VggConfig,
};
use capnn_tensor::XorShiftRng;
use criterion::{criterion_group, criterion_main, Criterion};

/// Prunes `ratio` of the units of every hidden prunable layer (tail-style
/// every-k-th pattern, never the output layer, never a whole layer).
fn ratio_mask(net: &Network, ratio: f64) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let pruned = ((units as f64) * ratio) as usize;
        let flags: Vec<bool> = (0..units).map(|u| u >= pruned).collect();
        mask.set_layer(li, flags).expect("mask fits");
    }
    mask
}

fn bench_forward(c: &mut Criterion) {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8)).expect("config");
    let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 7)
        .build()
        .expect("builds");
    let mut rng = XorShiftRng::new(3);
    let x = images.sample(0, &mut rng);

    let half_mask = ratio_mask(&net, 0.5);
    let compacted = net.compact(&half_mask).expect("compacts");

    let mut group = c.benchmark_group("device_inference");
    let mut full_engine = Engine::new(&net);
    group.bench_function("full_model", |b| {
        b.iter(|| {
            full_engine
                .run(InferenceRequest::single(&x))
                .expect("forward")
                .into_single()
                .expect("single output")
        })
    });
    for (label, ratio) in [
        ("masked_model_25pct", 0.25),
        ("masked_model_50pct", 0.50),
        ("masked_model_75pct", 0.75),
    ] {
        let mask = ratio_mask(&net, ratio);
        let mut scratch = ExecScratch::new();
        group.bench_function(label, |b| {
            b.iter(|| {
                net.forward_masked_with_scratch(&x, &mask, &mut scratch)
                    .expect("forward")
            })
        });
    }
    let mut compact_engine = Engine::new(&compacted);
    group.bench_function("compacted_model_50pct", |b| {
        b.iter(|| {
            compact_engine
                .run(InferenceRequest::single(&x))
                .expect("forward")
                .into_single()
                .expect("single output")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
