//! Device-side inference throughput: masked execution of the full model vs
//! the compacted (physically smaller) model the cloud actually ships — the
//! latter is the paper's model-size payoff in compute form.

use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{NetworkBuilder, PruneMask, VggConfig};
use capnn_tensor::XorShiftRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_forward(c: &mut Criterion) {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8)).expect("config");
    let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 7)
        .build()
        .expect("builds");
    let mut rng = XorShiftRng::new(3);
    let x = images.sample(0, &mut rng);

    // prune half the units of every hidden prunable layer
    let mut mask = PruneMask::all_kept(&net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let flags: Vec<bool> = (0..units).map(|u| u % 2 == 0).collect();
        mask.set_layer(li, flags).expect("mask fits");
    }
    let compacted = net.compact(&mask).expect("compacts");

    let mut group = c.benchmark_group("device_inference");
    group.bench_function("full_model", |b| {
        b.iter(|| net.forward(&x).expect("forward"))
    });
    group.bench_function("masked_model", |b| {
        b.iter(|| net.forward_masked(&x, &mask).expect("forward"))
    });
    group.bench_function("compacted_model", |b| {
        b.iter(|| compacted.forward(&x).expect("forward"))
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
