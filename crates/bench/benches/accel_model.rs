//! Throughput of the analytical accelerator model: workload extraction and
//! energy evaluation must be cheap enough to sweep thousands of masks.

use capnn_accel::{
    network_energy, network_workload, AcceleratorConfig, EnergyModel, SystolicModel,
};
use capnn_nn::{NetworkBuilder, PruneMask, VggConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_accel(c: &mut Criterion) {
    let net = NetworkBuilder::vgg(&VggConfig::vgg_mini(12), 7)
        .build()
        .expect("builds");
    let mask = PruneMask::all_kept(&net);
    let systolic = SystolicModel::new(AcceleratorConfig::tpu_like()).expect("config");
    let model = EnergyModel::paper_table1();

    let mut group = c.benchmark_group("accelerator_model");
    group.bench_function("workload_extraction", |b| {
        b.iter(|| network_workload(&net, &mask).expect("workload"))
    });
    let wl = network_workload(&net, &mask).expect("workload");
    group.bench_function("energy_evaluation", |b| {
        b.iter(|| network_energy(&model, &systolic, &wl))
    });
    group.finish();
}

criterion_group!(benches, bench_accel);
criterion_main!(benches);
