//! Conv micro-kernel benchmarks: the panel-packed `conv_gemm_into` stack
//! against the legacy route it replaced (cache-blocked `matmul_into` over
//! the same im2col matrix plus a separate bias sweep), and the batch-wide
//! row-partitioned unfold against the per-sample strided loop.
//!
//! Shapes mirror the vgg_tiny serving workload: a 3×3 conv over a 6-kept-
//! channel activation producing 12 kept channels on an 8×8 output plane
//! (`krows = 54`), at batch 1 and batch 32.

use capnn_tensor::{
    conv_gemm_i8_into, conv_gemm_into, dense_batch_i8_into, dense_batch_into, im2col_batch_into,
    im2col_strided_into, matmul_into, pack_conv_panels, pack_dense_panels, quantize_conv_panels_i8,
    quantize_dense_panels_i8, quantize_slice_i8, Conv2dSpec, Tensor, XorShiftRng,
};
use criterion::{criterion_group, criterion_main, Criterion};

const IN_C: usize = 6;
const OUT_C: usize = 12;
const K: usize = 3;
const H: usize = 9; // stride-1 3×3 with padding 1 keeps a 9×9 plane

fn bench_conv_kernels(c: &mut Criterion) {
    let spec = Conv2dSpec::new(IN_C, OUT_C, K, 1, 1);
    let (oh, ow) = spec.output_hw(H, H);
    let oplane = oh * ow;
    let krows = IN_C * K * K;
    let plane = H * H;
    let mut rng = XorShiftRng::new(11);
    let w = Tensor::uniform(&[OUT_C, krows], -1.0, 1.0, &mut rng);
    let bias = Tensor::uniform(&[OUT_C], -0.5, 0.5, &mut rng);
    let panels = pack_conv_panels(w.as_slice(), OUT_C, krows);

    for batch in [1usize, 32] {
        // channel-major batched activation, as between compiled-plan steps
        let input = Tensor::uniform(&[IN_C * batch * plane], -1.0, 1.0, &mut rng);
        let wide = batch * oplane;
        let mut cols = vec![0.0f32; krows * wide];
        im2col_batch_into(input.as_slice(), &spec, H, H, batch, &mut cols, 1);
        let mut out = vec![0.0f32; OUT_C * wide];

        let mut group = c.benchmark_group(format!("conv_kernels_batch{batch}"));

        // GEMM: legacy cache-blocked matmul + separate bias pass...
        group.bench_function("matmul_plus_bias", |b| {
            b.iter(|| {
                matmul_into(w.as_slice(), &cols, &mut out, OUT_C, krows, wide, 1);
                for (oc, &bc) in bias.as_slice().iter().enumerate() {
                    for v in &mut out[oc * wide..(oc + 1) * wide] {
                        *v += bc;
                    }
                }
            })
        });
        // ...vs the panel-packed kernel with the fused bias+ReLU epilogue
        group.bench_function("conv_gemm_fused", |b| {
            b.iter(|| {
                conv_gemm_into(
                    &panels,
                    &cols,
                    Some(bias.as_slice()),
                    &mut out,
                    OUT_C,
                    krows,
                    wide,
                    true,
                    1,
                );
            })
        });

        // unfold: per-sample strided loop vs the batch-wide partitioned one
        group.bench_function("im2col_per_sample", |b| {
            b.iter(|| {
                for s in 0..batch {
                    im2col_strided_into(
                        input.as_slice(),
                        &spec,
                        H,
                        H,
                        batch * plane,
                        s * plane,
                        wide,
                        s * oplane,
                        &mut cols,
                    );
                }
            })
        });
        group.bench_function("im2col_batch", |b| {
            b.iter(|| im2col_batch_into(input.as_slice(), &spec, H, H, batch, &mut cols, 1))
        });
        group.finish();
    }
}

/// Int8 vs f32 GEMM kernels on the same shapes the compiled plan runs:
/// the vgg_tiny conv step above and a 50 %-pruned serving-MLP dense layer
/// (768 inputs → 384 kept outputs). Activations are pre-quantized — the
/// per-sample quantize cost is tracked separately (`plan.quantize_ns`),
/// this group isolates the kernel arithmetic.
fn bench_int8_kernels(c: &mut Criterion) {
    let spec = Conv2dSpec::new(IN_C, OUT_C, K, 1, 1);
    let (oh, ow) = spec.output_hw(H, H);
    let oplane = oh * ow;
    let krows = IN_C * K * K;
    let plane = H * H;
    const N_IN: usize = 768;
    const N_OUT: usize = 384;
    let mut rng = XorShiftRng::new(19);
    let w = Tensor::uniform(&[OUT_C, krows], -1.0, 1.0, &mut rng);
    let bias = Tensor::uniform(&[OUT_C], -0.5, 0.5, &mut rng);
    let conv_panels = pack_conv_panels(w.as_slice(), OUT_C, krows);
    let (conv_qpanels, conv_wscales) = quantize_conv_panels_i8(w.as_slice(), OUT_C, krows);
    let wt = Tensor::uniform(&[N_IN, N_OUT], -1.0, 1.0, &mut rng);
    let dense_bias = Tensor::uniform(&[N_OUT], -0.5, 0.5, &mut rng);
    let dense_panels = pack_dense_panels(wt.as_slice(), N_IN, N_OUT);
    let (dense_qpanels, dense_wscales) = quantize_dense_panels_i8(wt.as_slice(), N_IN, N_OUT);

    for batch in [1usize, 32] {
        let input = Tensor::uniform(&[IN_C * batch * plane], -1.0, 1.0, &mut rng);
        let wide = batch * oplane;
        let mut cols = vec![0.0f32; krows * wide];
        im2col_batch_into(input.as_slice(), &spec, H, H, batch, &mut cols, 1);
        // quantize the CHW input per sample as the plan does, then unfold
        // the i8 activation and broadcast each sample's scale to its columns
        let mut qinput = vec![0i8; IN_C * batch * plane];
        let mut col_scales = vec![0.0f32; wide];
        for b in 0..batch {
            let sample: Vec<f32> = (0..IN_C)
                .flat_map(|ch| {
                    let at = (ch * batch + b) * plane;
                    input.as_slice()[at..at + plane].iter().copied()
                })
                .collect();
            let mut qsample = vec![0i8; sample.len()];
            let scale = quantize_slice_i8(&sample, &mut qsample);
            for ch in 0..IN_C {
                let at = (ch * batch + b) * plane;
                qinput[at..at + plane].copy_from_slice(&qsample[ch * plane..(ch + 1) * plane]);
            }
            col_scales[b * oplane..(b + 1) * oplane].fill(scale);
        }
        let mut qcols = vec![0i8; krows * wide];
        im2col_batch_into(&qinput, &spec, H, H, batch, &mut qcols, 1);
        let mut out = vec![0.0f32; OUT_C * wide];

        let acts = Tensor::uniform(&[batch, N_IN], -1.0, 1.0, &mut rng);
        let mut qa = vec![0i8; batch * N_IN];
        let mut a_scales = vec![0.0f32; batch];
        for b in 0..batch {
            a_scales[b] = quantize_slice_i8(
                &acts.as_slice()[b * N_IN..(b + 1) * N_IN],
                &mut qa[b * N_IN..(b + 1) * N_IN],
            );
        }
        let mut dense_out = vec![0.0f32; batch * N_OUT];

        let mut group = c.benchmark_group(format!("int8_kernels_batch{batch}"));
        group.bench_function("conv_gemm_f32", |b| {
            b.iter(|| {
                conv_gemm_into(
                    &conv_panels,
                    &cols,
                    Some(bias.as_slice()),
                    &mut out,
                    OUT_C,
                    krows,
                    wide,
                    true,
                    1,
                );
            })
        });
        group.bench_function("conv_gemm_i8", |b| {
            b.iter(|| {
                conv_gemm_i8_into(
                    &conv_qpanels,
                    &conv_wscales,
                    &qcols,
                    &col_scales,
                    Some(bias.as_slice()),
                    &mut out,
                    OUT_C,
                    krows,
                    wide,
                    true,
                    1,
                );
            })
        });
        group.bench_function("dense_batch_f32", |b| {
            b.iter(|| {
                dense_batch_into(
                    acts.as_slice(),
                    &dense_panels,
                    dense_bias.as_slice(),
                    &mut dense_out,
                    batch,
                    N_IN,
                    N_OUT,
                    1,
                );
            })
        });
        group.bench_function("dense_batch_i8", |b| {
            b.iter(|| {
                dense_batch_i8_into(
                    &qa,
                    &a_scales,
                    &dense_qpanels,
                    &dense_wscales,
                    dense_bias.as_slice(),
                    &mut dense_out,
                    batch,
                    N_IN,
                    N_OUT,
                    1,
                );
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_conv_kernels, bench_int8_kernels);
criterion_main!(benches);
