//! Conv micro-kernel benchmarks: the panel-packed `conv_gemm_into` stack
//! against the legacy route it replaced (cache-blocked `matmul_into` over
//! the same im2col matrix plus a separate bias sweep), and the batch-wide
//! row-partitioned unfold against the per-sample strided loop.
//!
//! Shapes mirror the vgg_tiny serving workload: a 3×3 conv over a 6-kept-
//! channel activation producing 12 kept channels on an 8×8 output plane
//! (`krows = 54`), at batch 1 and batch 32.

use capnn_tensor::{
    conv_gemm_into, im2col_batch_into, im2col_strided_into, matmul_into, pack_conv_panels,
    Conv2dSpec, Tensor, XorShiftRng,
};
use criterion::{criterion_group, criterion_main, Criterion};

const IN_C: usize = 6;
const OUT_C: usize = 12;
const K: usize = 3;
const H: usize = 9; // stride-1 3×3 with padding 1 keeps a 9×9 plane

fn bench_conv_kernels(c: &mut Criterion) {
    let spec = Conv2dSpec::new(IN_C, OUT_C, K, 1, 1);
    let (oh, ow) = spec.output_hw(H, H);
    let oplane = oh * ow;
    let krows = IN_C * K * K;
    let plane = H * H;
    let mut rng = XorShiftRng::new(11);
    let w = Tensor::uniform(&[OUT_C, krows], -1.0, 1.0, &mut rng);
    let bias = Tensor::uniform(&[OUT_C], -0.5, 0.5, &mut rng);
    let panels = pack_conv_panels(w.as_slice(), OUT_C, krows);

    for batch in [1usize, 32] {
        // channel-major batched activation, as between compiled-plan steps
        let input = Tensor::uniform(&[IN_C * batch * plane], -1.0, 1.0, &mut rng);
        let wide = batch * oplane;
        let mut cols = vec![0.0f32; krows * wide];
        im2col_batch_into(input.as_slice(), &spec, H, H, batch, &mut cols, 1);
        let mut out = vec![0.0f32; OUT_C * wide];

        let mut group = c.benchmark_group(format!("conv_kernels_batch{batch}"));

        // GEMM: legacy cache-blocked matmul + separate bias pass...
        group.bench_function("matmul_plus_bias", |b| {
            b.iter(|| {
                matmul_into(w.as_slice(), &cols, &mut out, OUT_C, krows, wide, 1);
                for (oc, &bc) in bias.as_slice().iter().enumerate() {
                    for v in &mut out[oc * wide..(oc + 1) * wide] {
                        *v += bc;
                    }
                }
            })
        });
        // ...vs the panel-packed kernel with the fused bias+ReLU epilogue
        group.bench_function("conv_gemm_fused", |b| {
            b.iter(|| {
                conv_gemm_into(
                    &panels,
                    &cols,
                    Some(bias.as_slice()),
                    &mut out,
                    OUT_C,
                    krows,
                    wide,
                    true,
                    1,
                );
            })
        });

        // unfold: per-sample strided loop vs the batch-wide partitioned one
        group.bench_function("im2col_per_sample", |b| {
            b.iter(|| {
                for s in 0..batch {
                    im2col_strided_into(
                        input.as_slice(),
                        &spec,
                        H,
                        H,
                        batch * plane,
                        s * plane,
                        wide,
                        s * oplane,
                        &mut cols,
                    );
                }
            })
        });
        group.bench_function("im2col_batch", |b| {
            b.iter(|| im2col_batch_into(input.as_slice(), &spec, H, H, batch, &mut cols, 1))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_conv_kernels);
criterion_main!(benches);
