//! Throughput of the offline preprocessing stage: firing-rate profiling and
//! confusion-matrix measurement over a balanced dataset.

use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{NetworkBuilder, VggConfig};
use capnn_profile::{ConfusionMatrix, FiringRateProfiler};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_profiler(c: &mut Criterion) {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8)).expect("config");
    let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 7)
        .build()
        .expect("builds");
    let ds = images.generate(8, 1);

    let mut group = c.benchmark_group("offline_preprocessing");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("firing_rate_profile", |b| {
        b.iter(|| {
            FiringRateProfiler::new(4)
                .profile(&net, &ds)
                .expect("profiles")
        })
    });
    group.bench_function("confusion_matrix", |b| {
        b.iter(|| ConfusionMatrix::measure(&net, &ds).expect("measures"))
    });
    group.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
