//! Online pruning latency: the paper's claim that CAP'NN-B's online step
//! (bit-column intersection) is near-free, while CAP'NN-W/M pay for their
//! online threshold search.

use capnn_bench::experiments::VariantRunner;
use capnn_bench::{PaperRig, Scale};
use capnn_core::{CapnnB, UserProfile, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pruning(c: &mut Criterion) {
    let rig = PaperRig::build(Scale::small());
    let runner = VariantRunner::new(&rig);
    let profile = UserProfile::new(vec![0, 1], vec![0.8, 0.2]).expect("profile");

    let mut group = c.benchmark_group("online_pruning");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("capnn_b_intersection", 2), |b| {
        b.iter(|| CapnnB::online(&rig.net, runner.matrices(), profile.classes()).expect("online"))
    });
    group.bench_function(BenchmarkId::new("capnn_w_threshold_search", 2), |b| {
        b.iter(|| runner.mask_for(&profile, Variant::Weighted))
    });
    group.bench_function(BenchmarkId::new("capnn_m_full", 2), |b| {
        b.iter(|| runner.mask_for(&profile, Variant::Miseffectual))
    });
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
