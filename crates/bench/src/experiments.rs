//! Shared experiment logic used by the per-figure/table binaries.

use crate::rig::PaperRig;
use capnn_accel::{
    network_energy, network_workload, AcceleratorConfig, EnergyBreakdown, EnergyModel,
    SystolicModel,
};
use capnn_core::{CapnnB, CapnnM, CapnnW, PruningMatrices, UserProfile, Variant};
use capnn_data::{UsageDistribution, UsageScenario};
use capnn_nn::{model_size, PruneMask};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

/// Result of pruning one `(scenario, class-combination)` cell with one
/// variant.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Remaining parameters relative to the original model.
    pub relative_size: f64,
    /// Top-1 accuracy over the user's classes.
    pub top1: f32,
    /// Top-5 accuracy over the user's classes.
    pub top5: f32,
}

/// Averaged results of one usage scenario for all three variants.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Number of user classes.
    pub k: usize,
    /// Usage split, e.g. `"10%-90%"`.
    pub distribution: String,
    /// Unpruned top-1 accuracy over the user classes (averaged over combos).
    pub baseline_top1: f32,
    /// Unpruned top-5 accuracy over the user classes.
    pub baseline_top5: f32,
    /// CAP'NN-B averages.
    pub basic: CellResult,
    /// CAP'NN-W averages.
    pub weighted: CellResult,
    /// CAP'NN-M averages.
    pub miseffectual: CellResult,
}

/// Shared pruning state reused across scenarios (the expensive CAP'NN-B
/// offline matrices are computed once).
pub struct VariantRunner<'a> {
    rig: &'a PaperRig,
    matrices: PruningMatrices,
    w: CapnnW,
    m: CapnnM,
    original_size: usize,
}

impl<'a> VariantRunner<'a> {
    /// Prepares the runner; runs Algorithm 1 once.
    ///
    /// # Panics
    ///
    /// Panics if the rig's pieces disagree structurally (a bug, not a user
    /// error).
    pub fn new(rig: &'a PaperRig) -> Self {
        let b = CapnnB::new(rig.config).expect("validated config");
        let matrices = b
            .offline(&rig.net, &rig.rates, &rig.eval)
            .expect("offline matrices");
        let original_size = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
            .expect("original size")
            .total();
        Self {
            rig,
            matrices,
            w: CapnnW::new(rig.config).expect("validated config"),
            m: CapnnM::new(rig.config).expect("validated config"),
            original_size,
        }
    }

    /// The cached CAP'NN-B matrices.
    pub fn matrices(&self) -> &PruningMatrices {
        &self.matrices
    }

    /// Original (unpruned) parameter count.
    pub fn original_size(&self) -> usize {
        self.original_size
    }

    /// Prunes with one variant for one profile.
    ///
    /// # Panics
    ///
    /// Panics on structural errors (bug).
    pub fn mask_for(&self, profile: &UserProfile, variant: Variant) -> PruneMask {
        match variant {
            Variant::Basic => CapnnB::online(&self.rig.net, &self.matrices, profile.classes())
                .expect("online intersection"),
            Variant::Weighted => self
                .w
                .prune(&self.rig.net, &self.rig.rates, &self.rig.eval, profile)
                .expect("CAP'NN-W"),
            Variant::Miseffectual => self
                .m
                .prune(
                    &self.rig.net,
                    &self.rig.rates,
                    &self.rig.confusion,
                    &self.rig.eval,
                    profile,
                )
                .expect("CAP'NN-M"),
        }
    }

    /// Evaluates one mask: relative size + top-1/top-5 over the profile's
    /// classes.
    pub fn evaluate(&self, mask: &PruneMask, profile: &UserProfile) -> CellResult {
        let size = model_size(&self.rig.net, mask).expect("size accounting");
        let top1 = self
            .rig
            .eval
            .topk_accuracy(mask, 1, Some(profile.classes()))
            .expect("top-1");
        let top5 = self
            .rig
            .eval
            .topk_accuracy(mask, 5, Some(profile.classes()))
            .expect("top-5");
        CellResult {
            relative_size: size.total() as f64 / self.original_size as f64,
            top1,
            top5,
        }
    }

    /// Baseline (unpruned) accuracies over a profile's classes.
    pub fn baseline(&self, profile: &UserProfile) -> (f32, f32) {
        let mask = PruneMask::all_kept(&self.rig.net);
        let top1 = self
            .rig
            .eval
            .topk_accuracy(&mask, 1, Some(profile.classes()))
            .expect("top-1");
        let top5 = self
            .rig
            .eval
            .topk_accuracy(&mask, 5, Some(profile.classes()))
            .expect("top-5");
        (top1, top5)
    }

    /// Runs one scenario averaged over `combos` random class combinations.
    pub fn run_scenario(&self, scenario: &UsageScenario, combos: usize, seed: u64) -> ScenarioRow {
        let mut rng = XorShiftRng::new(seed);
        let mut acc = ScenarioAccumulator::default();
        for _ in 0..combos {
            let classes = rng.sample_combination(self.rig.scale.classes, scenario.k);
            let profile =
                UserProfile::with_distribution(classes, &scenario.distribution).expect("profile");
            let (b1, b5) = self.baseline(&profile);
            acc.baseline_top1 += b1;
            acc.baseline_top5 += b5;
            for (variant, slot) in [
                (Variant::Basic, 0usize),
                (Variant::Weighted, 1),
                (Variant::Miseffectual, 2),
            ] {
                let mask = self.mask_for(&profile, variant);
                let cell = self.evaluate(&mask, &profile);
                acc.add(slot, &cell);
            }
        }
        acc.finish(scenario, combos)
    }
}

#[derive(Default)]
struct ScenarioAccumulator {
    baseline_top1: f32,
    baseline_top5: f32,
    sums: [(f64, f32, f32); 3],
}

impl ScenarioAccumulator {
    fn add(&mut self, slot: usize, cell: &CellResult) {
        self.sums[slot].0 += cell.relative_size;
        self.sums[slot].1 += cell.top1;
        self.sums[slot].2 += cell.top5;
    }

    fn finish(self, scenario: &UsageScenario, combos: usize) -> ScenarioRow {
        let n = combos.max(1) as f64;
        let nf = combos.max(1) as f32;
        let cell = |i: usize| CellResult {
            relative_size: self.sums[i].0 / n,
            top1: self.sums[i].1 / nf,
            top5: self.sums[i].2 / nf,
        };
        ScenarioRow {
            k: scenario.k,
            distribution: scenario.distribution.to_string(),
            baseline_top1: self.baseline_top1 / nf,
            baseline_top5: self.baseline_top5 / nf,
            basic: cell(0),
            weighted: cell(1),
            miseffectual: cell(2),
        }
    }
}

/// Usage distributions averaged over for a given `K` in the energy and
/// large-`K` experiments: the paper grid's entries for `K ≤ 5`, otherwise a
/// uniform split plus a heavily skewed (head-heavy) split.
pub fn distributions_for_k(k: usize) -> Vec<UsageDistribution> {
    let presets: Vec<UsageDistribution> = capnn_data::paper_fig4_scenarios()
        .into_iter()
        .filter(|s| s.k == k)
        .map(|s| s.distribution)
        .collect();
    if !presets.is_empty() {
        return presets;
    }
    let uniform = UsageDistribution::uniform(k);
    // head-heavy: first class takes half, the rest share the remainder
    let mut w = vec![0.5f32];
    w.extend(std::iter::repeat_n(0.5 / (k - 1) as f32, k - 1));
    let skewed = UsageDistribution::new(w).expect("sums to 1");
    vec![uniform, skewed]
}

/// The accelerator + energy stack used by the energy experiments.
pub struct EnergyRig {
    /// Systolic access model.
    pub systolic: SystolicModel,
    /// Table I component energies.
    pub model: EnergyModel,
}

impl EnergyRig {
    /// Builds the default TPU-like stack.
    ///
    /// # Panics
    ///
    /// Never: the default configuration is valid.
    pub fn new() -> Self {
        Self {
            systolic: SystolicModel::new(AcceleratorConfig::tpu_like())
                .expect("default config is valid"),
            model: EnergyModel::paper_table1(),
        }
    }

    /// Energy of one inference of `net` under `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the mask does not match the network (bug).
    pub fn energy(&self, net: &capnn_nn::Network, mask: &PruneMask) -> EnergyBreakdown {
        let wl = network_workload(net, mask).expect("workload");
        network_energy(&self.model, &self.systolic, &wl)
    }
}

impl Default for EnergyRig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_nn::NetworkBuilder;

    #[test]
    fn distributions_for_small_k_use_paper_grid() {
        assert_eq!(distributions_for_k(2).len(), 5);
        assert_eq!(distributions_for_k(3).len(), 6);
        assert_eq!(distributions_for_k(5).len(), 7);
        for k in 2..=5 {
            for d in distributions_for_k(k) {
                assert_eq!(d.k(), k);
                assert!(d.is_normalized());
            }
        }
    }

    #[test]
    fn distributions_for_large_k_synthesized() {
        let ds = distributions_for_k(10);
        assert_eq!(ds.len(), 2);
        for d in &ds {
            assert_eq!(d.k(), 10);
            assert!(d.is_normalized());
        }
        // first is uniform, second head-heavy
        assert!(ds[0].entropy_bits() > ds[1].entropy_bits());
    }

    #[test]
    fn energy_rig_produces_positive_energy() {
        let rig = EnergyRig::default();
        let net = NetworkBuilder::mlp(&[8, 16, 4], 1).build().unwrap();
        let e = rig.energy(&net, &PruneMask::all_kept(&net));
        assert!(e.total_pj() > 0.0);
    }
}
