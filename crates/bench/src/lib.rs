//! Experiment harness for the CAP'NN reproduction.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md's experiment index). This library holds the
//! shared rig — a VGG-style network trained on the synthetic class-family
//! corpus, with firing rates, confusion matrix and evaluator prepared the
//! way the paper's cloud does — plus table-printing and result-recording
//! helpers.
//!
//! Scale is controlled by the `CAPNN_SCALE` environment variable:
//! `small` (default, minutes) or `full` (closer to paper scale, much
//! longer). Trained networks are cached under `target/capnn-cache/` so
//! repeated experiment runs skip training.

pub mod experiments;
pub mod loadgen;
pub mod report;
pub mod rig;

pub use report::{write_results_json, write_results_raw, Table};
pub use rig::{PaperRig, Scale};
