//! Zipfian fleet load generation, shared by the cache and server benches.
//!
//! One implementation, one seed policy: `perf_cache` and `perf_server`
//! must drive the *same* synthetic fleet — a large population of distinct
//! user profiles whose class sets follow Zipfian class popularity, with
//! requests drawn Zipfian over profile rank — or their hit rates and
//! latencies are not comparable. The shapes mirror what SECS reports for
//! real mobile request streams: a handful of popular classes dominates,
//! so a handful of class *sets* (and therefore canonical masks) carries
//! most of the traffic.
//!
//! # Examples
//!
//! ```
//! use capnn_bench::loadgen::{ZipfLoad, ZipfLoadConfig, DEFAULT_SEED};
//! use capnn_tensor::XorShiftRng;
//!
//! let mut rng = XorShiftRng::new(DEFAULT_SEED);
//! let load = ZipfLoad::new(ZipfLoadConfig::fleet(16, 1000), &mut rng);
//! let stream = load.stream(50, &mut rng);
//! assert_eq!(load.profiles().len(), 1000);
//! assert!(stream.iter().all(|&i| i < 1000));
//! ```

use capnn_core::UserProfile;
use capnn_tensor::XorShiftRng;

/// The one seed every fleet bench starts its request stream from, so runs
/// are reproducible and cross-bench comparable.
pub const DEFAULT_SEED: u64 = 0xF1EE7;

/// Shape of a synthetic Zipfian fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfLoadConfig {
    /// Distinct user profiles in the population.
    pub num_profiles: usize,
    /// Classes the cloud model serves.
    pub classes: usize,
    /// Class-popularity skew: class `c` is drawn ∝ 1/(c+1)^s. The 1.3
    /// default makes a handful of class sets dominate the mask population.
    pub class_zipf_s: f64,
    /// Request skew over profile ranks (classic Zipf, s = 1).
    pub rank_zipf_s: f64,
    /// Smallest class-set size a profile may have.
    pub min_classes: usize,
    /// Largest class-set size a profile may have.
    pub max_classes: usize,
}

impl ZipfLoadConfig {
    /// The fleet shape `perf_cache` established: 1–4 classes per profile,
    /// class Zipf 1.3, rank Zipf 1.0.
    pub fn fleet(classes: usize, num_profiles: usize) -> Self {
        Self {
            num_profiles,
            classes,
            class_zipf_s: 1.3,
            rank_zipf_s: 1.0,
            min_classes: 1,
            max_classes: 4,
        }
    }

    /// Same fleet, smaller class sets (1–2): the shape the server bench
    /// uses for wide models where 4-class plans would not fit a realistic
    /// budget.
    pub fn narrow(mut self, max_classes: usize) -> Self {
        self.max_classes = max_classes.max(self.min_classes);
        self
    }
}

/// Cumulative Zipf(s) distribution over `n` ranks, normalized to 1.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

/// Samples a rank from `cdf` by inverse transform (binary search).
pub fn sample_rank(cdf: &[f64], rng: &mut XorShiftRng) -> usize {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// A generated fleet: the profile population plus the rank distribution
/// requests are drawn from.
#[derive(Debug, Clone)]
pub struct ZipfLoad {
    config: ZipfLoadConfig,
    profiles: Vec<UserProfile>,
    rank_cdf: Vec<f64>,
}

impl ZipfLoad {
    /// Generates the profile population. Profiles have class sets of
    /// `min_classes..=max_classes` classes drawn with Zipfian class
    /// popularity and random normalized weights — every profile is its
    /// own identity even when class sets repeat, exactly the population
    /// the fleet cache must collapse.
    pub fn new(config: ZipfLoadConfig, rng: &mut XorShiftRng) -> Self {
        let class_cdf = zipf_cdf(config.classes, config.class_zipf_s);
        let span = config.max_classes.max(config.min_classes) - config.min_classes + 1;
        let profiles = (0..config.num_profiles)
            .map(|_| {
                let k = (config.min_classes + rng.next_below(span)).min(config.classes);
                let mut classes: Vec<usize> = Vec::with_capacity(k);
                while classes.len() < k {
                    let c = sample_rank(&class_cdf, rng);
                    if !classes.contains(&c) {
                        classes.push(c);
                    }
                }
                let mut weights: Vec<f32> = (0..k).map(|_| 0.05 + rng.next_uniform()).collect();
                let sum: f32 = weights.iter().sum();
                for w in &mut weights {
                    *w /= sum;
                }
                UserProfile::new(classes, weights).expect("valid profile")
            })
            .collect();
        let rank_cdf = zipf_cdf(config.num_profiles, config.rank_zipf_s);
        Self {
            config,
            profiles,
            rank_cdf,
        }
    }

    /// The shape this fleet was generated with.
    pub fn config(&self) -> &ZipfLoadConfig {
        &self.config
    }

    /// The profile population, rank order = popularity order.
    pub fn profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// Draws one request: the index of the profile it comes from.
    pub fn sample(&self, rng: &mut XorShiftRng) -> usize {
        sample_rank(&self.rank_cdf, rng)
    }

    /// Draws a request stream of `n` profile indices.
    pub fn stream(&self, n: usize, rng: &mut XorShiftRng) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Smallest prefix of the (rank-ordered) population carrying at least
    /// `mass` of the request distribution — the hot set a budget should
    /// be sized to hold.
    pub fn hot_prefix(&self, mass: f64) -> usize {
        self.rank_cdf
            .partition_point(|&c| c < mass)
            .saturating_add(1)
            .min(self.profiles.len())
    }

    /// Drifting stream: every `phase_len` requests, the whole rank order
    /// rotates by `shift`, so the profiles that were hot go cold and a new
    /// cohort takes over. This is the workload the drift detector exists
    /// for — within a phase the stream is ordinary Zipf, across phases the
    /// hot set moves.
    pub fn stream_drifting(
        &self,
        n: usize,
        phase_len: usize,
        shift: usize,
        rng: &mut XorShiftRng,
    ) -> Vec<usize> {
        let phase_len = phase_len.max(1);
        let m = self.profiles.len();
        (0..n)
            .map(|i| (self.sample(rng) + (i / phase_len) * shift) % m)
            .collect()
    }

    /// Bursty stream: `calm_len` ordinary Zipf draws, then one freshly
    /// sampled profile repeated `burst_len` times back-to-back — the
    /// "single user goes viral" shape that stresses batching and makes a
    /// per-user monitor see a flood of identical observations.
    pub fn stream_bursty(
        &self,
        n: usize,
        calm_len: usize,
        burst_len: usize,
        rng: &mut XorShiftRng,
    ) -> Vec<usize> {
        let calm_len = calm_len.max(1);
        let burst_len = burst_len.max(1);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            for _ in 0..calm_len {
                if out.len() == n {
                    break;
                }
                out.push(self.sample(rng));
            }
            let burst = self.sample(rng);
            for _ in 0..burst_len {
                if out.len() == n {
                    break;
                }
                out.push(burst);
            }
        }
        out
    }

    /// Adversarially shuffled stream: a plain Zipf stream whose requests
    /// are Fisher–Yates shuffled inside consecutive windows of `window`
    /// requests. The multiset of requests is unchanged (aggregate hit
    /// rates are comparable with [`stream`](Self::stream)), but temporal
    /// locality inside each window is destroyed — the worst legal
    /// reordering for an LRU and for batch coalescing.
    pub fn stream_adversarial(&self, n: usize, window: usize, rng: &mut XorShiftRng) -> Vec<usize> {
        let window = window.max(1);
        let mut out = self.stream(n, rng);
        for chunk in out.chunks_mut(window) {
            for i in (1..chunk.len()).rev() {
                chunk.swap(i, rng.next_below(i + 1));
            }
        }
        out
    }

    /// The profile at `idx` with every class rotated by `shift` modulo the
    /// model's class count (weights kept). This is the *content* drift that
    /// pairs with [`stream_drifting`](Self::stream_drifting): the same user
    /// identity starts asking about different classes.
    pub fn shifted_profile(&self, idx: usize, shift: usize) -> UserProfile {
        let base = &self.profiles[idx];
        let classes: Vec<usize> = base
            .classes()
            .iter()
            .map(|&c| (c + shift) % self.config.classes)
            .collect();
        UserProfile::new(classes, base.weights().to_vec()).expect("rotated profile stays valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let cdf = zipf_cdf(100, 1.0);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sampling_is_skewed_toward_low_ranks() {
        let cdf = zipf_cdf(1000, 1.0);
        let mut rng = XorShiftRng::new(7);
        let mut low = 0usize;
        for _ in 0..10_000 {
            if sample_rank(&cdf, &mut rng) < 10 {
                low += 1;
            }
        }
        // the top 10 of 1000 ranks carry ~39% of a Zipf(1) stream
        assert!(low > 2_500, "only {low}/10000 hit the top-10 ranks");
    }

    #[test]
    fn profiles_respect_config_bounds() {
        let mut rng = XorShiftRng::new(DEFAULT_SEED);
        let cfg = ZipfLoadConfig::fleet(16, 500);
        let load = ZipfLoad::new(cfg, &mut rng);
        assert_eq!(load.profiles().len(), 500);
        for p in load.profiles() {
            let k = p.classes().len();
            assert!((1..=4).contains(&k), "class-set size {k}");
            assert!(p.classes().iter().all(|&c| c < 16));
        }
        let narrow = ZipfLoad::new(ZipfLoadConfig::fleet(16, 200).narrow(2), &mut rng);
        assert!(narrow.profiles().iter().all(|p| p.classes().len() <= 2));
    }

    #[test]
    fn same_seed_same_fleet() {
        let make = || {
            let mut rng = XorShiftRng::new(DEFAULT_SEED);
            let load = ZipfLoad::new(ZipfLoadConfig::fleet(8, 300), &mut rng);
            let stream = load.stream(100, &mut rng);
            (load.profiles().to_vec(), stream)
        };
        let (pa, sa) = make();
        let (pb, sb) = make();
        assert_eq!(sa, sb);
        assert_eq!(pa.len(), pb.len());
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.classes(), b.classes());
        }
    }

    #[test]
    fn drifting_stream_moves_the_hot_set() {
        let mut rng = XorShiftRng::new(DEFAULT_SEED);
        let load = ZipfLoad::new(ZipfLoadConfig::fleet(16, 1_000), &mut rng);
        let stream = load.stream_drifting(4_000, 2_000, 500, &mut rng);
        let hot = |s: &[usize]| {
            let mut counts = vec![0usize; 1_000];
            for &i in s {
                counts[i] += 1;
            }
            let mut ranked: Vec<usize> = (0..1_000).collect();
            ranked.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
            ranked.truncate(10);
            ranked.sort_unstable();
            ranked
        };
        let early = hot(&stream[..2_000]);
        let late = hot(&stream[2_000..]);
        assert_ne!(early, late, "phase shift must move the hot set");
        // the late hot set is the early one rotated by the shift
        let rotated: Vec<usize> = {
            let mut r: Vec<usize> = early.iter().map(|&i| (i + 500) % 1_000).collect();
            r.sort_unstable();
            r
        };
        let overlap = late.iter().filter(|i| rotated.contains(i)).count();
        assert!(
            overlap >= 8,
            "late hot set should track the rotation, overlap {overlap}/10"
        );
    }

    #[test]
    fn bursty_stream_repeats_the_burst_profile() {
        let mut rng = XorShiftRng::new(DEFAULT_SEED);
        let load = ZipfLoad::new(ZipfLoadConfig::fleet(8, 200), &mut rng);
        let stream = load.stream_bursty(1_000, 50, 25, &mut rng);
        assert_eq!(stream.len(), 1_000);
        // every calm+burst period ends with burst_len identical entries
        let period = 75;
        for start in (0..stream.len()).step_by(period) {
            let end = (start + period).min(stream.len());
            if end - start < period {
                break;
            }
            let burst = &stream[start + 50..end];
            assert!(
                burst.iter().all(|&i| i == burst[0]),
                "burst window not constant"
            );
        }
    }

    #[test]
    fn adversarial_shuffle_preserves_the_multiset() {
        let make = |seed| {
            let mut rng = XorShiftRng::new(seed);
            let load = ZipfLoad::new(ZipfLoadConfig::fleet(16, 500), &mut rng);
            let mut plain_rng = XorShiftRng::new(DEFAULT_SEED);
            let plain = load.stream(2_000, &mut plain_rng);
            let mut shuf_rng = XorShiftRng::new(DEFAULT_SEED);
            let shuffled = load.stream_adversarial(2_000, 64, &mut shuf_rng);
            (plain, shuffled)
        };
        let (plain, shuffled) = make(3);
        assert_ne!(plain, shuffled, "shuffle should reorder");
        // the shuffle draws rng *after* generating the base stream, so the
        // base equals `plain` and each window must be a permutation of it
        for (p, s) in plain.chunks(64).zip(shuffled.chunks(64)) {
            let mut p = p.to_vec();
            let mut s = s.to_vec();
            p.sort_unstable();
            s.sort_unstable();
            assert_eq!(p, s, "window multiset must be preserved");
        }
        let (_, again) = make(3);
        assert_eq!(shuffled, again, "adversarial stream must be deterministic");
    }

    #[test]
    fn shifted_profile_rotates_classes_and_keeps_weights() {
        let mut rng = XorShiftRng::new(DEFAULT_SEED);
        let load = ZipfLoad::new(ZipfLoadConfig::fleet(16, 50), &mut rng);
        let base = &load.profiles()[7];
        let shifted = load.shifted_profile(7, 5);
        assert_eq!(shifted.classes().len(), base.classes().len());
        for (s, b) in shifted.classes().iter().zip(base.classes()) {
            assert_eq!(*s, (b + 5) % 16);
        }
        assert_eq!(shifted.weights(), base.weights());
        // shift by 0 is identity
        let same = load.shifted_profile(7, 16);
        assert_eq!(same.classes(), base.classes());
    }

    #[test]
    fn hot_prefix_shrinks_with_skew() {
        let mut rng = XorShiftRng::new(1);
        let load = ZipfLoad::new(ZipfLoadConfig::fleet(16, 10_000), &mut rng);
        let hot = load.hot_prefix(0.5);
        assert!(hot < 1_000, "50% of Zipf(1) mass needs {hot} profiles");
        assert!(load.hot_prefix(0.999) <= 10_000);
        assert!(load.hot_prefix(0.5) < load.hot_prefix(0.9));
    }
}
