//! Console tables and JSON result recording for the experiment binaries.

use serde::Serialize;
use std::path::PathBuf;

/// A simple fixed-width console table matching the paper's row/column
/// layout.
///
/// # Examples
///
/// ```
/// use capnn_bench::Table;
///
/// let mut t = Table::new(vec!["K".into(), "relative size".into()]);
/// t.row(vec!["2".into(), "0.33".into()]);
/// let s = t.to_string();
/// assert!(s.contains("relative size"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Writes a serializable result set to `results/<name>.json` (created on
/// demand), returning the path. Failures are reported but non-fatal — the
/// console table is the primary output.
pub fn write_results_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => std::fs::write(&path, bytes).ok().map(|()| path),
        Err(_) => None,
    }
}

/// Writes an already-rendered JSON string to `results/<name>.json` (created
/// on demand), returning the path. Used for telemetry snapshots, which
/// serialize themselves without serde. Failures are non-fatal.
pub fn write_results_raw(name: &str, json: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).ok().map(|()| path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["wide cell".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // all lines equal width for the first column
        assert!(lines[0].contains("a         | long header"));
        assert!(lines[2].starts_with("wide cell | x"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }
}
