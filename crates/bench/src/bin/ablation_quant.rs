//! Ablation: firing-rate quantization width (§V-C). The paper stores 3-bit
//! rates; this sweep measures how the bit width changes (a) storage, (b)
//! the pruning decisions CAP'NN-W makes with quantized rates vs exact ones,
//! and (c) the resulting model size — while the ε guarantee holds at every
//! width (the accuracy check always runs on the real network).

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnW, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_profile::quantize_rates;
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct QuantRow {
    bits: u32,
    storage_bytes: u64,
    mask_agreement: f64,
    relative_size: f64,
    max_degradation: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_quant] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let mut rng = XorShiftRng::new(0xAB1A7E);
    let classes = rng.sample_combination(rig.scale.classes, 3);
    let profile = UserProfile::new(classes, vec![0.6, 0.3, 0.1]).expect("profile");
    let w = CapnnW::new(rig.config).expect("valid");
    let exact_mask = w
        .prune(&rig.net, &rig.rates, &rig.eval, &profile)
        .expect("exact prune");

    let mut table = Table::new(vec![
        "bits".into(),
        "storage".into(),
        "mask agreement".into(),
        "rel. size".into(),
        "max degr.".into(),
    ]);
    let mut rows = Vec::new();
    for bits in [1u32, 2, 3, 4, 6, 8] {
        let q = quantize_rates(&rig.rates, bits);
        let mask = w
            .prune(&rig.net, &q.rates, &rig.eval, &profile)
            .expect("quantized prune");
        let agreement = mask_agreement(&exact_mask, &mask, &rig);
        let degr = rig
            .eval
            .max_degradation(&mask, Some(profile.classes()))
            .expect("degradation");
        assert!(
            degr <= rig.config.epsilon + 1e-4,
            "ε violated at {bits} bits"
        );
        let row = QuantRow {
            bits,
            storage_bytes: q.memory_bytes(),
            mask_agreement: agreement,
            relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                / original as f64,
            max_degradation: degr,
        };
        table.row(vec![
            bits.to_string(),
            row.storage_bytes.to_string(),
            format!("{:.1}%", row.mask_agreement * 100.0),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.max_degradation * 100.0),
        ]);
        rows.push(row);
    }
    println!("\nAblation — firing-rate quantization width (CAP'NN-W, fixed profile)");
    println!("{table}");
    println!("ε guarantee held at every width (the accuracy check is quantization-independent).");

    if let Some(path) = write_results_json("ablation_quant", &rows) {
        eprintln!("[ablation_quant] results written to {}", path.display());
    }
}

/// Fraction of prunable units on which two masks agree.
fn mask_agreement(a: &capnn_nn::PruneMask, b: &capnn_nn::PruneMask, rig: &PaperRig) -> f64 {
    let mut same = 0usize;
    let mut total = 0usize;
    for li in rig.net.prunable_layers() {
        let units = rig.net.layers()[li].unit_count().unwrap_or(0);
        for u in 0..units {
            total += 1;
            if a.is_kept(li, u) == b.is_kept(li, u) {
                same += 1;
            }
        }
    }
    same as f64 / total.max(1) as f64
}
