//! Ablation: the threshold-search hyper-parameters `T_start` and `step`
//! (§III-A). Larger `T_start` lets the search begin more aggressively;
//! smaller `step` finds tighter thresholds at the cost of more evaluation
//! passes. The ε guarantee must hold at every setting.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnW, PruningConfig, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_tensor::XorShiftRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ThresholdRow {
    t_start: f32,
    step: f32,
    relative_size: f64,
    max_degradation: f32,
    runtime_ms: u128,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_threshold] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let mut rng = XorShiftRng::new(0xAB1A7E);
    let classes = rng.sample_combination(rig.scale.classes, 3);
    let profile = UserProfile::new(classes, vec![0.6, 0.3, 0.1]).expect("profile");

    let mut table = Table::new(vec![
        "T_start".into(),
        "step".into(),
        "rel. size".into(),
        "max degr.".into(),
        "runtime".into(),
    ]);
    let mut rows = Vec::new();
    for t_start in [0.2f32, 0.4, 0.6, 0.8] {
        for step in [0.1f32, 0.05, 0.025] {
            let mut config = PruningConfig::paper();
            config.t_start = t_start;
            config.step = step;
            let w = CapnnW::new(config).expect("valid");
            let start = Instant::now();
            let mask = w
                .prune(&rig.net, &rig.rates, &rig.eval, &profile)
                .expect("prune");
            let runtime_ms = start.elapsed().as_millis();
            let degr = rig
                .eval
                .max_degradation(&mask, Some(profile.classes()))
                .expect("degradation");
            let row = ThresholdRow {
                t_start,
                step,
                relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                    / original as f64,
                max_degradation: degr,
                runtime_ms,
            };
            assert!(
                row.max_degradation <= config.epsilon + 1e-4,
                "ε guarantee violated at T_start={t_start}, step={step}"
            );
            table.row(vec![
                format!("{t_start}"),
                format!("{step}"),
                format!("{:.3}", row.relative_size),
                format!("{:.1}%", row.max_degradation * 100.0),
                format!("{} ms", row.runtime_ms),
            ]);
            rows.push(row);
        }
    }
    println!("\nAblation — threshold search (CAP'NN-W, fixed profile, ε = 3%)");
    println!("{table}");
    println!("ε guarantee held at every setting.");

    if let Some(path) = write_results_json("ablation_threshold", &rows) {
        eprintln!("[ablation_threshold] results written to {}", path.display());
    }
}
