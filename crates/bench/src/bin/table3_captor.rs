//! Table III: normalized post-pruning energy of CAP'NN-M vs the
//! CAPTOR-style class-adaptive baseline on a 10-class (CIFAR-10-like)
//! model, as the user's class subset grows from 10 % to 100 % of the
//! classes.
//!
//! The paper's takeaway: CAP'NN wins clearly at small class fractions
//! (its usage weighting + miseffectual pruning bite hardest there) and the
//! two systems converge as the subset approaches all classes.

use capnn_baselines::CaptorPruner;
use capnn_bench::experiments::EnergyRig;
use capnn_bench::{write_results_json, Scale, Table};
use capnn_core::{CapnnM, PruningConfig, TailEvaluator, UserProfile};
use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{NetworkBuilder, PruneMask, Trainer, TrainerConfig, VggConfig};
use capnn_profile::{ConfusionMatrix, FiringRateProfiler};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct CaptorRow {
    classes_pct: usize,
    k: usize,
    capnn_energy: f64,
    captor_energy: f64,
}

fn main() {
    let scale = Scale::from_env();
    // Dedicated 10-class rig, mirroring the paper's CIFAR-10 retrain.
    let mut img_cfg = SyntheticImagesConfig::small(10);
    img_cfg.image_size = 32;
    img_cfg.families = 5;
    // hard enough that the ε check binds — otherwise every subset prunes to
    // the T_start floor and the K-dependence (the point of the table)
    // disappears
    img_cfg.class_contrast = 0.35;
    img_cfg.noise = 0.7;
    let images = SyntheticImages::new(img_cfg).expect("valid config");
    eprintln!("[table3] training 10-class model…");
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_mini(10), 0xC1FA)
        .build()
        .expect("builds");
    let tcfg = TrainerConfig {
        epochs: scale.epochs,
        learning_rate: 0.03,
        ..TrainerConfig::default()
    };
    Trainer::new(tcfg, 0xACC)
        .fit(
            &mut net,
            images.generate(scale.train_per_class, 0x7EA1).samples(),
        )
        .expect("training");

    let config = PruningConfig::paper();
    let profiling = images.generate(scale.profile_per_class, 0xF1E1D);
    let eval_ds = images.generate(scale.eval_per_class, 0xE7A1);
    let rates = FiringRateProfiler::new(config.tail_layers)
        .profile(&net, &profiling)
        .expect("profiling");
    let confusion = ConfusionMatrix::measure(&net, &profiling).expect("confusion");
    let eval = TailEvaluator::new(&net, &eval_ds, config.tail_layers).expect("evaluator");
    let m = CapnnM::new(config).expect("config");
    let captor = CaptorPruner::new(config).expect("config");
    let energy_rig = EnergyRig::new();
    let baseline = energy_rig.energy(&net, &PruneMask::all_kept(&net));

    let mut table = Table::new(vec![
        "#Classes".into(),
        "CAP'NN".into(),
        "CAPTOR-style".into(),
    ]);
    let mut rows = Vec::new();
    let mut rng = XorShiftRng::new(0x7AB1E3);
    for k in 1usize..=10 {
        let combos = scale.combos_per_k.max(1);
        let mut capnn_sum = 0.0f64;
        let mut captor_sum = 0.0f64;
        for _ in 0..combos {
            let classes = rng.sample_combination(10, k);
            // CAP'NN-M uses a head-heavy usage distribution (its advantage);
            // CAPTOR is class-adaptive but usage-unweighted by design.
            let weights = head_heavy(k);
            let profile = UserProfile::new(classes.clone(), weights).expect("profile");
            let mask_m = m
                .prune(&net, &rates, &confusion, &eval, &profile)
                .expect("CAP'NN-M");
            capnn_sum += energy_rig.energy(&net, &mask_m).relative_to(&baseline);
            let mask_c = captor
                .prune(&net, &rates, &eval, &classes)
                .expect("CAPTOR-style");
            captor_sum += energy_rig.energy(&net, &mask_c).relative_to(&baseline);
        }
        let row = CaptorRow {
            classes_pct: k * 10,
            k,
            capnn_energy: capnn_sum / combos as f64,
            captor_energy: captor_sum / combos as f64,
        };
        table.row(vec![
            format!("{}%", row.classes_pct),
            format!("{:.2}", row.capnn_energy),
            format!("{:.2}", row.captor_energy),
        ]);
        eprintln!("[table3] {}% done", row.classes_pct);
        rows.push(row);
    }
    println!("\nTable III — normalized energy vs class-adaptive baseline (10-class model)");
    println!("{table}");
    // Paper shape: CAP'NN clearly ahead at small fractions; the gap closes
    // (and [11] even edges ahead around 80–90%) as the subset approaches all
    // classes.
    let small_win = rows[0].capnn_energy < rows[0].captor_energy
        && rows[1].capnn_energy < rows[1].captor_energy;
    let late_parity = (rows[9].capnn_energy - rows[9].captor_energy).abs() < 0.3;
    println!("CAP'NN wins at ≤20% of classes: {small_win}; near-parity at 100%: {late_parity}");

    if let Some(path) = write_results_json("table3_captor", &rows) {
        eprintln!("[table3] results written to {}", path.display());
    }
}

/// First class takes 50 % (or 100 % for k = 1), the rest share evenly.
fn head_heavy(k: usize) -> Vec<f32> {
    if k == 1 {
        return vec![1.0];
    }
    let mut w = vec![0.5f32];
    w.extend(std::iter::repeat_n(0.5 / (k - 1) as f32, k - 1));
    w
}
