//! Figure 4: average post-pruning relative model size for the 24
//! `(K, usage)` configurations, for all three CAP'NN variants.
//!
//! Run with `cargo run --release -p capnn-bench --bin fig4_model_size`;
//! set `CAPNN_SCALE=full` for paper-closer scale.

use capnn_bench::experiments::VariantRunner;
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_data::paper_fig4_scenarios;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig4] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    eprintln!("[fig4] running CAP'NN-B offline pass (Algorithm 1)…");
    let runner = VariantRunner::new(&rig);

    let mut table = Table::new(vec![
        "K".into(),
        "usage".into(),
        "CAP'NN-B".into(),
        "CAP'NN-W".into(),
        "CAP'NN-M".into(),
    ]);
    let mut rows = Vec::new();
    for (i, scenario) in paper_fig4_scenarios().iter().enumerate() {
        let row = runner.run_scenario(scenario, scale.combos_per_k, 0xF160 + i as u64);
        table.row(vec![
            row.k.to_string(),
            row.distribution.clone(),
            format!("{:.3}", row.basic.relative_size),
            format!("{:.3}", row.weighted.relative_size),
            format!("{:.3}", row.miseffectual.relative_size),
        ]);
        eprintln!(
            "[fig4] {} done (B {:.3} / W {:.3} / M {:.3})",
            scenario,
            row.basic.relative_size,
            row.weighted.relative_size,
            row.miseffectual.relative_size
        );
        rows.push(row);
    }
    println!("\nFigure 4 — relative model size (1.0 = original), avg over {} random class combinations per cell", scale.combos_per_k);
    println!("{table}");

    // Per-K summary like the paper's prose ("for K = 5: B 66%, W 30%, M 29%")
    let mut summary = Table::new(vec![
        "K".into(),
        "B avg".into(),
        "W avg".into(),
        "M avg".into(),
    ]);
    for k in [2usize, 3, 4, 5] {
        let sel: Vec<_> = rows.iter().filter(|r| r.k == k).collect();
        let n = sel.len().max(1) as f64;
        let avg = |f: &dyn Fn(&capnn_bench::experiments::ScenarioRow) -> f64| {
            sel.iter().map(|r| f(r)).sum::<f64>() / n
        };
        summary.row(vec![
            k.to_string(),
            format!("{:.3}", avg(&|r| r.basic.relative_size)),
            format!("{:.3}", avg(&|r| r.weighted.relative_size)),
            format!("{:.3}", avg(&|r| r.miseffectual.relative_size)),
        ]);
    }
    println!("Per-K averages:");
    println!("{summary}");

    if let Some(path) = write_results_json("fig4_model_size", &rows) {
        eprintln!("[fig4] results written to {}", path.display());
    }
}
