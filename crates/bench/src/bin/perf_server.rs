//! End-to-end serving latency/throughput of the multi-tenant front-end.
//!
//! The serving scenario the fleet cache and the batching server were built
//! for, measured whole: 10^5 distinct user profiles, requests drawn
//! Zipfian over profile rank (the `loadgen` fleet both `perf_cache` and
//! this bin share), submitted concurrently to an [`InferenceServer`] whose
//! workers drain per-plan queues into dynamic batches. Two models bracket
//! the adaptive controller's job — the wide `serving_mlp`, whose
//! throughput keeps climbing with batch size, and `vgg_tiny(8)`, which
//! peaks near batch 8 and regresses beyond (see `BENCH_serving.json`) —
//! so one fixed batch size cannot be right for both.
//!
//! Each model runs one **adaptive** mode and a sweep of **fixed** batch
//! sizes through the identical closed-loop wave driver; the report
//! records p50/p95/p99 serve latency (queue dwell + batch execution),
//! end-to-end throughput, the cache hit rate over the measured window,
//! and `adaptive_vs_best_fixed` — the acceptance ratio showing the
//! controller found the knee instead of inheriting a fixed size's
//! regression. Sampled responses are checked bitwise against direct
//! [`Engine`] execution of the same profile's mask.
//!
//! Emits `results/BENCH_server.json`. Smoke mode (`CAPNN_BENCH_SMOKE=1`)
//! keeps the 10^5-profile population but runs a downsized MLP and only
//! the adaptive mode, gating on: zero failed responses, p99 under a
//! generous bound, measured-window hit rate ≥ 90 %, and argmax
//! bit-compatibility.

use capnn_bench::loadgen::{ZipfLoad, ZipfLoadConfig, DEFAULT_SEED};
use capnn_bench::write_results_json;
use capnn_core::{
    CloudServer, FleetPlanCache, InferenceServer, PruningConfig, ServeRequest, ServerConfig,
    SharedFleetCache, UserProfile, Variant,
};
use capnn_data::{SyntheticImages, SyntheticImagesConfig, VectorClusters, VectorClustersConfig};
use capnn_nn::{
    Engine, ExecStrategy, InferenceRequest, NetworkBuilder, Precision, Trainer, TrainerConfig,
    VggConfig,
};
use capnn_tensor::{Tensor, XorShiftRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const NUM_PROFILES: usize = 100_000;
/// Closed-loop wave size: submit this many, wait for all, repeat. Half the
/// queue capacity, so admission control never rejects under the benchmark
/// itself (rejections would censor the latency distribution).
const WAVE: usize = 256;
const QUEUE_CAPACITY: usize = 512;
/// Weight-quantization steps for profile keys — the fleet-wide value.
const WEIGHT_STEPS: u16 = 16;
/// Smoke-mode p99 ceiling: generous (CI boxes are noisy); the real
/// latency story is the full run's percentile table.
const SMOKE_P99_CEILING_US: f64 = 250_000.0;

fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Per-model request input generation.
enum InputGen {
    /// Uniform random vectors of the given dimension (MLP serving).
    Uniform(usize),
    /// Class-conditioned synthetic images: each request draws an image of
    /// one of the requesting profile's own classes (CNN serving).
    Images(SyntheticImages),
}

impl InputGen {
    fn sample(&self, profile: &UserProfile, rng: &mut XorShiftRng) -> Tensor {
        match self {
            InputGen::Uniform(dim) => Tensor::uniform(&[*dim], -1.0, 1.0, rng),
            InputGen::Images(images) => {
                let classes = profile.classes();
                let class = classes[rng.next_below(classes.len())];
                images.sample(class, rng)
            }
        }
    }
}

#[derive(Debug, Serialize)]
struct BucketRow {
    batch: usize,
    ewma_us_per_sample: f64,
    trials: u64,
}

#[derive(Debug, Serialize)]
struct ModeRow {
    mode: String,
    fixed_batch: Option<usize>,
    requests: usize,
    /// End-to-end measured-phase throughput (responses per second of wall
    /// time, closed-loop waves).
    throughput_rps: f64,
    /// Serve latency = queue dwell + batch execution, per response.
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    /// Mean dispatched batch size over the whole run (warmup included).
    mean_batch: f64,
    /// The batch size the adaptive controller converged on (fixed modes:
    /// the pin).
    converged_batch: usize,
    /// Plan-cache hit rate over the measured window only (warmup misses
    /// excluded — steady-state serving is what the fleet sees).
    window_hit_rate: f64,
    rejected: u64,
    failed: u64,
    /// Adaptive modes: the controller's learned latency curve.
    buckets: Vec<BucketRow>,
}

#[derive(Debug, Serialize)]
struct ModelReport {
    model: String,
    classes: usize,
    distinct_profiles: usize,
    max_classes_per_profile: usize,
    /// Canonical masks the sizing pass discovered (the plan population the
    /// cache actually manages).
    unique_masks: usize,
    /// Cache byte budget the serving modes ran under (1.2× the residency a
    /// warmup-length stream reaches unbounded).
    budget_bytes: u64,
    sizing_resident_bytes: u64,
    modes: Vec<ModeRow>,
    /// Adaptive throughput over the best fixed-mode throughput — ≥ 0.9
    /// means the controller found the knee.
    adaptive_vs_best_fixed: Option<f64>,
    argmax_bit_compatible: bool,
    argmax_samples_checked: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    num_profiles: usize,
    wave: usize,
    queue_capacity: usize,
    warmup_requests: usize,
    measured_requests: usize,
    rank_zipf_s: f64,
    class_zipf_s: f64,
    models: Vec<ModelReport>,
}

struct ModeOutcome {
    row: ModeRow,
    throughput_rps: f64,
}

/// Drives one serving mode: fresh budgeted cache, fresh server, a warmup
/// phase (populates the cache and, in adaptive mode, trains the
/// controller), then a measured phase whose latencies, wall time and
/// cache-stats delta become the row.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    mode: &str,
    shared: &Arc<SharedFleetCache>,
    load: &ZipfLoad,
    gen: &InputGen,
    budget: u64,
    fixed_batch: Option<usize>,
    warmup_n: usize,
    measured_n: usize,
    rng: &mut XorShiftRng,
) -> ModeOutcome {
    shared.reset_cache(FleetPlanCache::with_budget(WEIGHT_STEPS, Some(budget)).expect("cache"));
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let server = InferenceServer::start_with_cache(
        Arc::clone(shared),
        ServerConfig {
            workers: host_cores.min(4),
            queue_capacity: QUEUE_CAPACITY,
            fixed_batch,
            ..ServerConfig::default()
        },
    )
    .expect("server");

    let mut failed = 0u64;
    let mut drive = |n: usize, lat_us: Option<&mut Vec<f64>>, rng: &mut XorShiftRng| {
        let mut lat_us = lat_us;
        let mut remaining = n;
        while remaining > 0 {
            let wave = WAVE.min(remaining);
            remaining -= wave;
            let handles: Vec<_> = (0..wave)
                .map(|_| {
                    let profile = &load.profiles()[load.sample(rng)];
                    let input = gen.sample(profile, rng);
                    server
                        .submit(ServeRequest::new(profile.clone(), input))
                        .expect("admitted (wave <= capacity)")
                })
                .collect();
            for h in handles {
                match h.wait() {
                    Ok(resp) => {
                        if let Some(lat) = lat_us.as_deref_mut() {
                            lat.push((resp.dwell + resp.exec).as_secs_f64() * 1e6);
                        }
                    }
                    Err(_) => failed += 1,
                }
            }
        }
    };

    drive(warmup_n, None, rng);
    let stats0 = shared.stats();
    let mut lat_us: Vec<f64> = Vec::with_capacity(measured_n);
    let t0 = Instant::now();
    drive(measured_n, Some(&mut lat_us), rng);
    let elapsed = t0.elapsed().as_secs_f64();
    let stats1 = shared.stats();

    let snapshot = server.controller_snapshot(Precision::F32);
    let sstats = server.shutdown();

    lat_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| {
        if lat_us.is_empty() {
            0.0
        } else {
            lat_us[((lat_us.len() - 1) as f64 * p) as usize]
        }
    };
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;
    let wh = stats1.hits - stats0.hits;
    let wm = stats1.misses - stats0.misses;
    let window_hit_rate = wh as f64 / (wh + wm).max(1) as f64;
    let throughput_rps = lat_us.len() as f64 / elapsed;

    let (converged_batch, buckets) = match &snapshot {
        Some(s) => (
            s.converged_batch,
            s.buckets
                .iter()
                .map(|b| BucketRow {
                    batch: b.batch,
                    ewma_us_per_sample: b.ewma_ns_per_sample / 1e3,
                    trials: b.trials,
                })
                .collect(),
        ),
        None => (fixed_batch.unwrap_or(1), Vec::new()),
    };
    let row = ModeRow {
        mode: mode.into(),
        fixed_batch,
        requests: lat_us.len(),
        throughput_rps,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us,
        mean_batch: sstats.mean_batch(),
        converged_batch,
        window_hit_rate,
        rejected: sstats.rejected,
        failed,
        buckets: if fixed_batch.is_none() {
            buckets
        } else {
            Vec::new()
        },
    };
    eprintln!(
        "[server] {mode:<10} {:>6} reqs  {:>8.0} rps  p50 {:>8.1} µs  p99 {:>9.1} µs  \
         batch {:>4.1} (→{})  hit {:>6.2}%",
        row.requests,
        row.throughput_rps,
        row.p50_us,
        row.p99_us,
        row.mean_batch,
        row.converged_batch,
        row.window_hit_rate * 100.0,
    );
    ModeOutcome {
        row,
        throughput_rps,
    }
}

/// Sizes the cache budget for one model: replay a warmup-length stream
/// through an unbounded cache, then grant 1.2× the residency it reached —
/// roomy for the hot mask set, tight enough that cold-tail masks churn.
fn size_budget(
    shared: &Arc<SharedFleetCache>,
    load: &ZipfLoad,
    stream_len: usize,
    rng: &mut XorShiftRng,
) -> (u64, u64, usize) {
    shared.reset_cache(FleetPlanCache::with_budget(WEIGHT_STEPS, None).expect("cache"));
    for _ in 0..stream_len {
        let profile = &load.profiles()[load.sample(rng)];
        shared
            .plan_for(profile, Variant::Basic, Precision::F32)
            .expect("sizing plan");
    }
    let resident = shared.resident_bytes();
    let unique = shared.unique_masks();
    (resident * 6 / 5, resident, unique)
}

/// Sampled bit-compatibility: responses served through the batching
/// server must equal direct [`Engine`] execution of the same profile's
/// own pruned mask (slack 0 ⇒ the canonical plan IS the profile's plan).
fn verify_argmax(
    shared: &Arc<SharedFleetCache>,
    load: &ZipfLoad,
    gen: &InputGen,
    budget: u64,
    rng: &mut XorShiftRng,
) -> (bool, usize) {
    shared.reset_cache(FleetPlanCache::with_budget(WEIGHT_STEPS, Some(budget)).expect("cache"));
    let server = InferenceServer::start_with_cache(Arc::clone(shared), ServerConfig::default())
        .expect("server");
    let check = 8;
    let picks: Vec<(usize, Tensor)> = (0..check)
        .map(|_| {
            let idx = load.sample(rng);
            let input = gen.sample(&load.profiles()[idx], rng);
            (idx, input)
        })
        .collect();
    let served: Vec<Tensor> = picks
        .iter()
        .map(|(idx, input)| {
            server
                .infer(ServeRequest::new(
                    load.profiles()[*idx].clone(),
                    input.clone(),
                ))
                .expect("served")
                .output
        })
        .collect();
    server.shutdown();
    shared.with_cloud(|cloud| {
        let masks: Vec<_> = picks
            .iter()
            .map(|(idx, _)| {
                cloud
                    .prune_mask(&load.profiles()[*idx], Variant::Basic)
                    .expect("mask")
            })
            .collect();
        let mut engine = Engine::new(cloud.network());
        let mut compatible = true;
        for (((_, input), mask), served_out) in picks.iter().zip(&masks).zip(&served) {
            let direct = engine
                .run(
                    InferenceRequest::single(input)
                        .masked(mask)
                        .strategy(ExecStrategy::CompiledPlan),
                )
                .expect("direct")
                .into_single()
                .expect("single");
            if direct.as_slice() != served_out.as_slice() || direct.argmax() != served_out.argmax()
            {
                compatible = false;
                eprintln!("[server] ARGMAX/BITWISE MISMATCH vs direct engine");
            }
        }
        (compatible, check)
    })
}

/// Runs the full mode sweep for one model and assembles its report.
#[allow(clippy::too_many_arguments)]
fn run_model(
    name: &str,
    cloud: CloudServer,
    load: &ZipfLoad,
    gen: &InputGen,
    adaptive_only: bool,
    warmup_n: usize,
    measured_n: usize,
    rng: &mut XorShiftRng,
) -> ModelReport {
    eprintln!(
        "[server] === {name}: {} profiles, {} warmup + {} measured per mode ===",
        load.profiles().len(),
        warmup_n,
        measured_n
    );
    let shared = Arc::new(SharedFleetCache::new(
        cloud,
        FleetPlanCache::with_budget(WEIGHT_STEPS, None).expect("cache"),
    ));
    let (budget, sizing_resident, unique_masks) = size_budget(&shared, load, warmup_n, rng);
    eprintln!(
        "[server] {name}: {unique_masks} canonical masks, sizing resident {sizing_resident} B, \
         budget {budget} B"
    );

    let mut modes = Vec::new();
    let adaptive = run_mode(
        "adaptive", &shared, load, gen, budget, None, warmup_n, measured_n, rng,
    );
    let adaptive_rps = adaptive.throughput_rps;
    modes.push(adaptive.row);
    let mut best_fixed_rps: Option<f64> = None;
    if !adaptive_only {
        for fixed in [1usize, 8, 32] {
            let outcome = run_mode(
                &format!("fixed{fixed}"),
                &shared,
                load,
                gen,
                budget,
                Some(fixed),
                warmup_n,
                measured_n,
                rng,
            );
            best_fixed_rps = Some(best_fixed_rps.unwrap_or(0.0).max(outcome.throughput_rps));
            modes.push(outcome.row);
        }
    }
    let adaptive_vs_best_fixed = best_fixed_rps.map(|best| adaptive_rps / best);
    if let Some(ratio) = adaptive_vs_best_fixed {
        eprintln!(
            "[server] {name}: adaptive/best-fixed throughput {ratio:.3} (target ≥ 0.9: {})",
            if ratio >= 0.9 { "met" } else { "MISSED" }
        );
    }

    let (argmax_ok, checked) = verify_argmax(&shared, load, gen, budget, rng);
    ModelReport {
        model: name.into(),
        classes: load.config().classes,
        distinct_profiles: load.profiles().len(),
        max_classes_per_profile: load.config().max_classes,
        unique_masks,
        budget_bytes: budget,
        sizing_resident_bytes: sizing_resident,
        modes,
        adaptive_vs_best_fixed,
        argmax_bit_compatible: argmax_ok,
        argmax_samples_checked: checked,
    }
}

/// A trained MLP serving cloud. Smoke keeps the fleet shape but shrinks
/// the network so CI measures the serving machinery, not GEMM time.
fn mlp_cloud(smoke: bool) -> (CloudServer, usize) {
    let classes = 16;
    let dim = if smoke { 24 } else { 256 };
    let widths: Vec<usize> = if smoke {
        vec![dim, 64, 48, classes]
    } else {
        vec![dim, 512, 256, 128, classes]
    };
    let gen = VectorClusters::new(VectorClustersConfig::easy(classes, dim)).expect("gen");
    let mut net = NetworkBuilder::mlp(&widths, 11).build().expect("builds");
    let cfg = TrainerConfig {
        epochs: if smoke { 6 } else { 8 },
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(
            &mut net,
            gen.generate(if smoke { 30 } else { 40 }, 1).samples(),
        )
        .expect("training");
    let cloud = CloudServer::new(
        net,
        &gen.generate(20, 2),
        &gen.generate(12, 3),
        PruningConfig::fast(),
    )
    .expect("cloud");
    (cloud, dim)
}

/// A trained tiny-VGG serving cloud over synthetic images.
fn vgg_cloud() -> (CloudServer, SyntheticImages) {
    let classes = 8;
    let images = SyntheticImages::new(SyntheticImagesConfig::small(classes)).expect("config");
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(classes), 7)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 2,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, images.generate(10, 1).samples())
        .expect("training");
    let cloud = CloudServer::new(
        net,
        &images.generate(8, 2),
        &images.generate(6, 3),
        PruningConfig::fast(),
    )
    .expect("cloud");
    (cloud, images)
}

/// Smoke gates over one model report's adaptive row. Returns `true` on
/// failure.
fn smoke_gate(model: &ModelReport) -> bool {
    let Some(row) = model.modes.iter().find(|m| m.mode == "adaptive") else {
        eprintln!("[server] smoke gate: no adaptive mode, nothing to check");
        return false;
    };
    let mut failed = false;
    if row.failed > 0 {
        eprintln!(
            "[server] smoke gate FAILED: {} failed responses",
            row.failed
        );
        failed = true;
    }
    if row.p99_us > SMOKE_P99_CEILING_US {
        eprintln!(
            "[server] smoke gate FAILED: p99 {:.0} µs > {:.0} µs",
            row.p99_us, SMOKE_P99_CEILING_US
        );
        failed = true;
    }
    if row.window_hit_rate < 0.90 {
        eprintln!(
            "[server] smoke gate FAILED: window hit rate {:.2}% < 90%",
            row.window_hit_rate * 100.0
        );
        failed = true;
    }
    if !model.argmax_bit_compatible {
        eprintln!("[server] smoke gate FAILED: argmax mismatch vs direct engine");
        failed = true;
    }
    if !failed {
        eprintln!(
            "[server] smoke gate: 0 failures, p99 {:.0} µs ≤ {:.0} µs, hit {:.2}% ≥ 90%, \
             argmax OK",
            row.p99_us,
            SMOKE_P99_CEILING_US,
            row.window_hit_rate * 100.0
        );
    }
    failed
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let smoke = smoke_mode();
    let (warmup_n, measured_n) = if smoke {
        (4_000, 1_200)
    } else {
        (4_000, 12_000)
    };
    eprintln!(
        "[server] {NUM_PROFILES} distinct profiles, waves of {WAVE}, host cores: {host_cores}"
    );

    let mut rng = XorShiftRng::new(DEFAULT_SEED);
    let mut models = Vec::new();

    // serving MLP: narrow class sets (1–2) keep wide-model plan bytes
    // realistic for a budgeted fleet
    let (cloud, dim) = mlp_cloud(smoke);
    let mlp_load = ZipfLoad::new(ZipfLoadConfig::fleet(16, NUM_PROFILES).narrow(2), &mut rng);
    let gen = InputGen::Uniform(dim);
    models.push(run_model(
        "serving_mlp",
        cloud,
        &mlp_load,
        &gen,
        smoke,
        warmup_n,
        measured_n,
        &mut rng,
    ));

    // tiny VGG: the model whose batch-32 regression the controller must
    // dodge (full runs only — conv compiles are too slow for CI smoke)
    if !smoke {
        let (cloud, images) = vgg_cloud();
        let vgg_load = ZipfLoad::new(ZipfLoadConfig::fleet(8, NUM_PROFILES), &mut rng);
        let gen = InputGen::Images(images);
        models.push(run_model(
            "vgg_tiny(8)",
            cloud,
            &vgg_load,
            &gen,
            false,
            warmup_n,
            measured_n,
            &mut rng,
        ));
    }

    let all_compatible = models.iter().all(|m| m.argmax_bit_compatible);
    let all_knees = models
        .iter()
        .all(|m| m.adaptive_vs_best_fixed.is_none_or(|r| r >= 0.9));
    let report = Report {
        host_cores,
        num_profiles: NUM_PROFILES,
        wave: WAVE,
        queue_capacity: QUEUE_CAPACITY,
        warmup_requests: warmup_n,
        measured_requests: measured_n,
        rank_zipf_s: mlp_load.config().rank_zipf_s,
        class_zipf_s: mlp_load.config().class_zipf_s,
        models,
    };
    if smoke {
        eprintln!("[server] smoke mode: skipping results/ write");
    } else if let Some(path) = write_results_json("BENCH_server", &report) {
        eprintln!("[server] results written to {}", path.display());
    }

    let gate_failed = smoke && report.models.iter().any(smoke_gate);
    if !all_compatible || gate_failed {
        std::process::exit(1);
    }
    if !smoke && !all_knees {
        eprintln!("[server] adaptive batching missed the 0.9× best-fixed target");
        std::process::exit(1);
    }
}
