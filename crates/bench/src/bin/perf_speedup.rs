//! Execution-engine perf trajectory: masked (compute-skipping) forward vs
//! dense forward at paper-like prune ratios, and single- vs multi-threaded
//! dataset sweeps (firing-rate profiling, per-class evaluation).
//!
//! Emits `results/BENCH_inference.json` so later PRs can track speedups
//! against a recorded baseline. Also asserts the acceptance property that
//! the compute-skipping engine is argmax-bit-compatible with the
//! zero-after-dense reference on the full synthetic eval set.

use capnn_bench::{write_results_json, write_results_raw};
use capnn_core::TailEvaluator;
use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{
    Engine, ExecScratch, InferenceRequest, Network, NetworkBuilder, PlanScratch, Precision,
    PruneMask, VggConfig,
};
use capnn_profile::FiringRateProfiler;
use capnn_tensor::{parallel, Tensor, XorShiftRng};
use serde::Serialize;
use std::time::Instant;

/// `CAPNN_BENCH_SMOKE=1` runs a tiny-iteration smoke pass (CI: exercise the
/// bin end to end, including the bit-compatibility checks, without timing
/// fidelity) and skips writing `results/`.
fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

#[derive(Debug, Serialize)]
struct ForwardRow {
    variant: String,
    prune_ratio: f64,
    iters: usize,
    total_s: f64,
    per_sample_us: f64,
    throughput_sps: f64,
    speedup_vs_dense: f64,
}

#[derive(Debug, Serialize)]
struct SweepRow {
    task: String,
    threads: usize,
    samples: usize,
    total_s: f64,
    throughput_sps: f64,
    speedup_vs_single: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    default_threads: usize,
    model: String,
    argmax_bit_compatible: bool,
    plan_argmax_bit_compatible: bool,
    argmax_samples_checked: usize,
    int8_argmax_agreement: f64,
    int8_argmax_samples: usize,
    forward: Vec<ForwardRow>,
    sweeps: Vec<SweepRow>,
}

/// Minimum fraction of eval samples on which the int8 plan's top-1 class
/// must agree with the f32 plan's: the accuracy-delta gate.
const INT8_AGREEMENT_FLOOR: f64 = 0.99;

/// Prunes `ratio` of the units of every hidden prunable layer.
fn ratio_mask(net: &Network, ratio: f64) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let pruned = ((units as f64) * ratio) as usize;
        let flags: Vec<bool> = (0..units).map(|u| u >= pruned).collect();
        mask.set_layer(li, flags).expect("mask fits");
    }
    mask
}

fn time_forward<F: FnMut() -> Tensor>(iters: usize, mut f: F) -> f64 {
    // warmup (fills scratch buffers, warms caches)
    for _ in 0..iters.min(3) {
        std::hint::black_box(f());
    }
    // best-of-3: the minimum repetition is the least contended
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let classes = 8;
    let images = SyntheticImages::new(SyntheticImagesConfig::small(classes)).expect("config");
    let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(classes), 7)
        .build()
        .expect("builds");
    let mut rng = XorShiftRng::new(3);
    let x = images.sample(0, &mut rng);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let default_threads = parallel::max_threads();

    eprintln!("[perf] host cores: {host_cores}, pool threads: {default_threads}");

    // --- argmax bit-compatibility on the full synthetic eval set ---------
    let eval_set = images.generate(16, 11); // 16/class × 8 classes = 128 samples
    let check_mask = ratio_mask(&net, 0.5);
    let check_plan = net.compile(&check_mask).expect("compiles");
    let int8_plan = net
        .compile_with_precision(&check_mask, Precision::Int8)
        .expect("compiles int8");
    let mut scratch = ExecScratch::new();
    let mut plan_scratch = PlanScratch::new();
    let mut int8_scratch = PlanScratch::new();
    let mut compatible = true;
    let mut plan_compatible = true;
    let mut int8_agree = 0usize;
    for (sample, _) in eval_set.samples() {
        let fast = net
            .forward_masked_with_scratch(sample, &check_mask, &mut scratch)
            .expect("engine");
        let reference = net
            .forward_masked_reference_from(0, sample, &check_mask)
            .expect("reference");
        if fast.argmax() != reference.argmax() {
            compatible = false;
            eprintln!("[perf] ARGMAX MISMATCH on a sample!");
        }
        let planned = check_plan
            .forward_with_scratch(sample, &mut plan_scratch)
            .expect("plan");
        if planned.argmax() != reference.argmax() {
            plan_compatible = false;
            eprintln!("[perf] PLAN ARGMAX MISMATCH on a sample!");
        }
        let quantized = int8_plan
            .forward_with_scratch(sample, &mut int8_scratch)
            .expect("int8 plan");
        if quantized.argmax() == planned.argmax() {
            int8_agree += 1;
        }
    }
    let int8_agreement = int8_agree as f64 / eval_set.len() as f64;
    let int8_ok = int8_agreement >= INT8_AGREEMENT_FLOOR;
    eprintln!(
        "[perf] argmax bit-compatibility over {} samples: engine {}, plan {}",
        eval_set.len(),
        if compatible { "OK" } else { "FAILED" },
        if plan_compatible { "OK" } else { "FAILED" }
    );
    eprintln!(
        "[perf] int8 top-1 agreement vs f32 plan: {int8_agree}/{} ({:.2}%) — {}",
        eval_set.len(),
        int8_agreement * 100.0,
        if int8_ok {
            "OK"
        } else {
            "BELOW 99% ACCURACY-DELTA GATE"
        }
    );

    // --- masked vs dense forward -----------------------------------------
    let iters = if smoke_mode() { 5 } else { 200 };
    let mut dense_engine = Engine::new(&net);
    let dense_s = time_forward(iters, || {
        dense_engine
            .run(InferenceRequest::single(&x))
            .expect("forward")
            .into_single()
            .expect("single output")
    });
    let dense_per = dense_s / iters as f64;
    let mut forward = vec![ForwardRow {
        variant: "dense".into(),
        prune_ratio: 0.0,
        iters,
        total_s: dense_s,
        per_sample_us: dense_per * 1e6,
        throughput_sps: 1.0 / dense_per,
        speedup_vs_dense: 1.0,
    }];
    for ratio in [0.25, 0.5, 0.75] {
        let mask = ratio_mask(&net, ratio);
        let mut scratch = ExecScratch::new();
        let s = time_forward(iters, || {
            net.forward_masked_with_scratch(&x, &mask, &mut scratch)
                .expect("forward")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("masked_skip_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }
    let compacted = net.compact(&ratio_mask(&net, 0.5)).expect("compacts");
    let mut compact_engine = Engine::new(&compacted);
    let s = time_forward(iters, || {
        compact_engine
            .run(InferenceRequest::single(&x))
            .expect("forward")
            .into_single()
            .expect("single output")
    });
    let per = s / iters as f64;
    forward.push(ForwardRow {
        variant: "compacted_50pct".into(),
        prune_ratio: 0.5,
        iters,
        total_s: s,
        per_sample_us: per * 1e6,
        throughput_sps: 1.0 / per,
        speedup_vs_dense: dense_per / per,
    });
    for ratio in [0.25, 0.5, 0.75] {
        let plan = net.compile(&ratio_mask(&net, ratio)).expect("compiles");
        let mut scratch = PlanScratch::new();
        let s = time_forward(iters, || {
            plan.forward_with_scratch(&x, &mut scratch).expect("plan")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("compiled_plan_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }
    for ratio in [0.25, 0.5, 0.75] {
        let plan = net
            .compile_with_precision(&ratio_mask(&net, ratio), Precision::Int8)
            .expect("compiles int8");
        let mut scratch = PlanScratch::new();
        let s = time_forward(iters, || {
            plan.forward_with_scratch(&x, &mut scratch).expect("plan")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("compiled_plan_int8_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }

    for row in &forward {
        eprintln!(
            "[perf] {:<22} {:>9.1} µs/sample  {:>6.2}x vs dense",
            row.variant, row.per_sample_us, row.speedup_vs_dense
        );
    }

    // --- dataset sweeps: 1 thread vs a multi-thread pool ------------------
    // At least 3 threads even on small hosts: this is the configuration
    // where the min-work-per-thread threshold has to keep tiny tail
    // replays serial instead of regressing below single-thread.
    let sweep_threads = default_threads.max(3);
    let sweep_set = images.generate(if smoke_mode() { 6 } else { 24 }, 13);
    let mut sweeps = Vec::new();
    for task in ["profile", "eval"] {
        let mut single_s = 0.0;
        for &threads in &[1usize, sweep_threads] {
            parallel::set_max_threads(threads);
            let t0 = Instant::now();
            match task {
                "profile" => {
                    let rates = FiringRateProfiler::new(3)
                        .profile(&net, &sweep_set)
                        .expect("profiles");
                    std::hint::black_box(rates);
                }
                _ => {
                    let eval = TailEvaluator::new(&net, &sweep_set, 2).expect("evaluates");
                    std::hint::black_box(eval.baseline().mean(None));
                }
            }
            let s = t0.elapsed().as_secs_f64();
            if threads == 1 {
                single_s = s;
            }
            sweeps.push(SweepRow {
                task: task.into(),
                threads,
                samples: sweep_set.len(),
                total_s: s,
                throughput_sps: sweep_set.len() as f64 / s,
                speedup_vs_single: if s > 0.0 { single_s / s } else { 1.0 },
            });
            if sweep_threads == 1 {
                break; // the two configs coincide
            }
        }
    }
    parallel::set_max_threads(default_threads);
    for row in &sweeps {
        eprintln!(
            "[perf] sweep {:<8} threads={:<2} {:>8.1} samples/s  {:>5.2}x vs 1 thread",
            row.task, row.threads, row.throughput_sps, row.speedup_vs_single
        );
    }

    let report = Report {
        host_cores,
        default_threads,
        model: "vgg_tiny(8)".into(),
        argmax_bit_compatible: compatible,
        plan_argmax_bit_compatible: plan_compatible,
        argmax_samples_checked: eval_set.len(),
        int8_argmax_agreement: int8_agreement,
        int8_argmax_samples: eval_set.len(),
        forward,
        sweeps,
    };
    if smoke_mode() {
        eprintln!("[perf] smoke mode: skipping results/ write");
    } else if let Some(path) = write_results_json("BENCH_inference", &report) {
        eprintln!("[perf] results written to {}", path.display());
    }

    // --- telemetry snapshot (CAPNN_TELEMETRY=1 runs only) -----------------
    let mut telemetry_ok = true;
    if let Some(snapshot) = capnn_telemetry::snapshot() {
        // the conv probes are part of this bin's contract: plan compilation
        // must have recorded its panel-packing time, and every timed conv
        // step its effective-throughput gauge
        if !snapshot.histograms.contains_key("plan.conv_pack_ns") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.conv_pack_ns histogram");
        }
        if !snapshot.gauges.keys().any(|k| k.ends_with("_conv_gflops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-conv-step *_conv_gflops gauge");
        }
        // the int8 path ran above, so its probes must have fired too
        if !snapshot.histograms.contains_key("plan.quantize_ns") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.quantize_ns histogram");
        }
        if !snapshot.gauges.keys().any(|k| k.ends_with("_int8_gops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-step *_int8_gops gauge");
        }
        if telemetry_ok {
            eprintln!(
                "[perf] telemetry probes present: plan.conv_pack_ns + *_conv_gflops \
                 + plan.quantize_ns + *_int8_gops"
            );
        }
        let json = snapshot.to_json();
        if smoke_mode() {
            eprintln!(
                "[perf] telemetry snapshot: {} counters, {} gauges, {} histograms \
                 ({} bytes; smoke mode: not written)",
                snapshot.counters.len(),
                snapshot.gauges.len(),
                snapshot.histograms.len(),
                json.len()
            );
        } else if let Some(path) = write_results_raw("TELEMETRY_inference", &json) {
            eprintln!("[perf] telemetry snapshot written to {}", path.display());
        }
    }
    if !compatible || !plan_compatible || !int8_ok || !telemetry_ok {
        std::process::exit(1);
    }
}
