//! Execution-engine perf trajectory: masked (compute-skipping) forward vs
//! dense forward at paper-like prune ratios, and single- vs multi-threaded
//! dataset sweeps (firing-rate profiling, per-class evaluation).
//!
//! Emits `results/BENCH_inference.json` so later PRs can track speedups
//! against a recorded baseline. Also asserts the acceptance property that
//! the compute-skipping engine is argmax-bit-compatible with the
//! zero-after-dense reference on the full synthetic eval set.
//!
//! `--sweep` (implied by any non-smoke run) additionally walks the hybrid
//! N:M tier across the 0/10/25/50/75% prune grid: each point gates a 2:4
//! pattern per GEMM layer against the dense f32 plan and requires the
//! gated hybrid plan to stay >= 1.0x that dense plan, emitting the
//! `monotone_speedup` boolean into the results JSON.

use capnn_bench::{write_results_json, write_results_raw};
use capnn_core::TailEvaluator;
use capnn_data::{SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{
    CompiledPlan, Engine, ExecScratch, InferenceRequest, Network, NetworkBuilder, PlanScratch,
    Precision, PruneMask, Sparsity, Trainer, TrainerConfig, VggConfig,
};
use capnn_profile::{gate_nm_plan, FiringRateProfiler, NmGateConfig};
use capnn_tensor::{parallel, Tensor, XorShiftRng};
use serde::Serialize;
use std::time::Instant;

/// `CAPNN_BENCH_SMOKE=1` runs a tiny-iteration smoke pass (CI: exercise the
/// bin end to end, including the bit-compatibility checks, without timing
/// fidelity) and skips writing `results/`.
fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// `CAPNN_NM_PATTERN=n:m` overrides the hybrid sweep's N:M shape
/// (default `2:4`; `4:8` is the other shape of interest).
fn nm_pattern() -> (u8, u8) {
    match std::env::var("CAPNN_NM_PATTERN") {
        Ok(s) => {
            let (n, m) = s
                .split_once(':')
                .unwrap_or_else(|| panic!("CAPNN_NM_PATTERN must look like 2:4, got {s:?}"));
            (
                n.trim().parse().expect("CAPNN_NM_PATTERN n"),
                m.trim().parse().expect("CAPNN_NM_PATTERN m"),
            )
        }
        Err(_) => (2, 4),
    }
}

#[derive(Debug, Serialize)]
struct ForwardRow {
    variant: String,
    prune_ratio: f64,
    iters: usize,
    total_s: f64,
    per_sample_us: f64,
    throughput_sps: f64,
    speedup_vs_dense: f64,
}

#[derive(Debug, Serialize)]
struct HybridRow {
    variant: String,
    prune_ratio: f64,
    iters: usize,
    dense_plan_us: f64,
    hybrid_plan_us: f64,
    speedup_vs_dense_plan: f64,
    argmax_agreement: f64,
    /// GEMM layers that survived the accuracy gate.
    nm_layers_gated: usize,
    /// GEMM layers actually served N:M after the benefit gate (0 when the
    /// gated plan measured no faster than dense and the tier fell back).
    nm_layers_enabled: usize,
    nm_candidates: usize,
}

#[derive(Debug, Serialize)]
struct SweepRow {
    task: String,
    threads: usize,
    samples: usize,
    total_s: f64,
    throughput_sps: f64,
    speedup_vs_single: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    default_threads: usize,
    model: String,
    argmax_bit_compatible: bool,
    plan_argmax_bit_compatible: bool,
    argmax_samples_checked: usize,
    int8_argmax_agreement: f64,
    int8_argmax_samples: usize,
    hybrid_agreement_floor: f64,
    /// `Some(true)` when the full `--sweep` grid ran and the gated hybrid
    /// plan was >= 1.0x the dense plan at every prune point; `None` when
    /// only the quick 25% point ran.
    monotone_speedup: Option<bool>,
    forward: Vec<ForwardRow>,
    hybrid: Vec<HybridRow>,
    sweeps: Vec<SweepRow>,
}

/// Minimum fraction of eval samples on which the int8 plan's top-1 class
/// must agree with the f32 plan's: the accuracy-delta gate.
const INT8_AGREEMENT_FLOOR: f64 = 0.99;

/// Same floor for the hybrid N:M tier, enforced per sweep point against
/// the dense f32 plan (the gate rejects any layer flip that would sink
/// below this, so a violation here means the gate itself is broken).
const HYBRID_AGREEMENT_FLOOR: f64 = 0.99;

/// Prunes `ratio` of the units of every hidden prunable layer.
fn ratio_mask(net: &Network, ratio: f64) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let pruned = ((units as f64) * ratio) as usize;
        let flags: Vec<bool> = (0..units).map(|u| u >= pruned).collect();
        mask.set_layer(li, flags).expect("mask fits");
    }
    mask
}

fn time_forward<F: FnMut() -> Tensor>(iters: usize, mut f: F) -> f64 {
    // warmup (fills scratch buffers, warms caches)
    for _ in 0..iters.min(3) {
        std::hint::black_box(f());
    }
    // best-of-3: the minimum repetition is the least contended
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let classes = 8;
    let images = SyntheticImages::new(SyntheticImagesConfig::small(classes)).expect("config");
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(classes), 7)
        .build()
        .expect("builds");
    // Brief training pass: weight *values* don't affect any timing row,
    // but the hybrid N:M accuracy gate needs real argmax margins — an
    // untrained net's near-tie logits flip top-1 under any weight
    // perturbation, so the gate would (correctly) refuse every layer.
    let train_set = images.generate(24, 29);
    let train_report = Trainer::new(
        TrainerConfig {
            epochs: 8,
            ..TrainerConfig::default()
        },
        0xACC,
    )
    .fit(&mut net, train_set.samples())
    .expect("trains");
    eprintln!(
        "[perf] trained vgg_tiny(8): final train accuracy {:.1}%",
        train_report.final_accuracy() * 100.0
    );
    let net = net;
    let mut rng = XorShiftRng::new(3);
    let x = images.sample(0, &mut rng);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let default_threads = parallel::max_threads();

    eprintln!("[perf] host cores: {host_cores}, pool threads: {default_threads}");

    // --- argmax bit-compatibility on the full synthetic eval set ---------
    let eval_set = images.generate(16, 11); // 16/class × 8 classes = 128 samples
    let check_mask = ratio_mask(&net, 0.5);
    let check_plan = net.compile(&check_mask).expect("compiles");
    let int8_plan = net
        .compile_with_precision(&check_mask, Precision::Int8)
        .expect("compiles int8");
    let mut scratch = ExecScratch::new();
    let mut plan_scratch = PlanScratch::new();
    let mut int8_scratch = PlanScratch::new();
    let mut compatible = true;
    let mut plan_compatible = true;
    let mut int8_agree = 0usize;
    for (sample, _) in eval_set.samples() {
        let fast = net
            .forward_masked_with_scratch(sample, &check_mask, &mut scratch)
            .expect("engine");
        let reference = net
            .forward_masked_reference_from(0, sample, &check_mask)
            .expect("reference");
        if fast.argmax() != reference.argmax() {
            compatible = false;
            eprintln!("[perf] ARGMAX MISMATCH on a sample!");
        }
        let planned = check_plan
            .forward_with_scratch(sample, &mut plan_scratch)
            .expect("plan");
        if planned.argmax() != reference.argmax() {
            plan_compatible = false;
            eprintln!("[perf] PLAN ARGMAX MISMATCH on a sample!");
        }
        let quantized = int8_plan
            .forward_with_scratch(sample, &mut int8_scratch)
            .expect("int8 plan");
        if quantized.argmax() == planned.argmax() {
            int8_agree += 1;
        }
    }
    let int8_agreement = int8_agree as f64 / eval_set.len() as f64;
    let int8_ok = int8_agreement >= INT8_AGREEMENT_FLOOR;
    eprintln!(
        "[perf] argmax bit-compatibility over {} samples: engine {}, plan {}",
        eval_set.len(),
        if compatible { "OK" } else { "FAILED" },
        if plan_compatible { "OK" } else { "FAILED" }
    );
    eprintln!(
        "[perf] int8 top-1 agreement vs f32 plan: {int8_agree}/{} ({:.2}%) — {}",
        eval_set.len(),
        int8_agreement * 100.0,
        if int8_ok {
            "OK"
        } else {
            "BELOW 99% ACCURACY-DELTA GATE"
        }
    );

    // --- masked vs dense forward -----------------------------------------
    let iters = if smoke_mode() { 5 } else { 200 };
    let mut dense_engine = Engine::new(&net);
    let dense_s = time_forward(iters, || {
        dense_engine
            .run(InferenceRequest::single(&x))
            .expect("forward")
            .into_single()
            .expect("single output")
    });
    let dense_per = dense_s / iters as f64;
    let mut forward = vec![ForwardRow {
        variant: "dense".into(),
        prune_ratio: 0.0,
        iters,
        total_s: dense_s,
        per_sample_us: dense_per * 1e6,
        throughput_sps: 1.0 / dense_per,
        speedup_vs_dense: 1.0,
    }];
    for ratio in [0.25, 0.5, 0.75] {
        let mask = ratio_mask(&net, ratio);
        let mut scratch = ExecScratch::new();
        let s = time_forward(iters, || {
            net.forward_masked_with_scratch(&x, &mask, &mut scratch)
                .expect("forward")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("masked_skip_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }
    let compacted = net.compact(&ratio_mask(&net, 0.5)).expect("compacts");
    let mut compact_engine = Engine::new(&compacted);
    let s = time_forward(iters, || {
        compact_engine
            .run(InferenceRequest::single(&x))
            .expect("forward")
            .into_single()
            .expect("single output")
    });
    let per = s / iters as f64;
    forward.push(ForwardRow {
        variant: "compacted_50pct".into(),
        prune_ratio: 0.5,
        iters,
        total_s: s,
        per_sample_us: per * 1e6,
        throughput_sps: 1.0 / per,
        speedup_vs_dense: dense_per / per,
    });
    for ratio in [0.25, 0.5, 0.75] {
        let plan = net.compile(&ratio_mask(&net, ratio)).expect("compiles");
        let mut scratch = PlanScratch::new();
        let s = time_forward(iters, || {
            plan.forward_with_scratch(&x, &mut scratch).expect("plan")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("compiled_plan_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }
    for ratio in [0.25, 0.5, 0.75] {
        let plan = net
            .compile_with_precision(&ratio_mask(&net, ratio), Precision::Int8)
            .expect("compiles int8");
        let mut scratch = PlanScratch::new();
        let s = time_forward(iters, || {
            plan.forward_with_scratch(&x, &mut scratch).expect("plan")
        });
        let per = s / iters as f64;
        forward.push(ForwardRow {
            variant: format!("compiled_plan_int8_{}pct", (ratio * 100.0) as u32),
            prune_ratio: ratio,
            iters,
            total_s: s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_dense: dense_per / per,
        });
    }

    for row in &forward {
        eprintln!(
            "[perf] {:<22} {:>9.1} µs/sample  {:>6.2}x vs dense",
            row.variant, row.per_sample_us, row.speedup_vs_dense
        );
    }

    // --- hybrid N:M prune sweep -------------------------------------------
    // At each prune ratio, gate a 2:4 pattern per GEMM layer against the
    // dense f32 plan (accuracy-delta gate, 99% top-1 agreement over the
    // eval set) and time the resulting hybrid plan against the dense plan
    // compiled from the same mask. `--sweep` (or any non-smoke run) covers
    // the full 0/10/25/50/75% grid and emits the `monotone_speedup`
    // boolean; plain smoke runs only time the gated 25% point.
    let full_grid = std::env::args().any(|a| a == "--sweep") || !smoke_mode();
    let grid: &[f64] = if full_grid {
        &[0.0, 0.10, 0.25, 0.50, 0.75]
    } else {
        &[0.25]
    };
    let (nm_n, nm_m) = nm_pattern();
    let profile_set = images.generate(4, 17);
    let rates = FiringRateProfiler::new(net.prunable_layers().len())
        .profile(&net, &profile_set)
        .expect("profiles");
    let gate_config = NmGateConfig {
        pattern: Sparsity::NM(nm_n, nm_m),
        ..NmGateConfig::default() // f32, 0.99 floor
    };
    let mut hybrid = Vec::new();
    for &ratio in grid {
        let mask = ratio_mask(&net, ratio);
        let dense_plan = net.compile(&mask).expect("compiles");
        let mut dense_scratch = PlanScratch::new();
        let dense_s = time_forward(iters, || {
            dense_plan
                .forward_with_scratch(&x, &mut dense_scratch)
                .expect("plan")
        });
        let dense_us = dense_s / iters as f64 * 1e6;
        let gate = gate_nm_plan(&net, &mask, &rates, &eval_set, &gate_config).expect("gates");
        let variant = format!("hybrid_nm{nm_n}{nm_m}_{}pct", (ratio * 100.0) as u32);
        let (hybrid_us, served_nm) = if gate.enabled.is_empty() {
            // every flip failed the accuracy gate: the hybrid tier *is*
            // the dense plan, so reuse its timing instead of re-measuring
            // the identical computation against noise
            (dense_us, 0)
        } else {
            let plan = CompiledPlan::compile_sparse_layers(
                &net,
                &mask,
                Precision::F32,
                &gate.layers,
                None,
            )
            .expect("compiles hybrid");
            let mut scratch = PlanScratch::new();
            let s = time_forward(iters, || {
                plan.forward_with_scratch(&x, &mut scratch)
                    .expect("hybrid plan")
            });
            let us = s / iters as f64 * 1e6;
            if us < dense_us {
                (us, gate.enabled.len())
            } else {
                // benefit gate: the accuracy gate only bounds the accuracy
                // delta — when the surviving N:M layers measure no faster
                // than the dense panel kernels (small kept widths, batch-1
                // gather overhead), the tier selection keeps serving dense
                eprintln!(
                    "[perf] {variant}: gated N:M measured {us:.1} µs vs dense \
                     {dense_us:.1} µs — benefit gate falls back to dense"
                );
                (dense_us, 0)
            }
        };
        hybrid.push(HybridRow {
            variant,
            prune_ratio: ratio,
            iters,
            dense_plan_us: dense_us,
            hybrid_plan_us: hybrid_us,
            speedup_vs_dense_plan: dense_us / hybrid_us,
            argmax_agreement: gate.agreement as f64,
            nm_layers_gated: gate.enabled.len(),
            nm_layers_enabled: served_nm,
            nm_candidates: gate.candidates.len(),
        });
    }
    let monotone_speedup = full_grid.then(|| hybrid.iter().all(|r| r.speedup_vs_dense_plan >= 1.0));
    let hybrid_25 = hybrid
        .iter()
        .find(|r| (r.prune_ratio - 0.25).abs() < 1e-9)
        .expect("25% sweep point");
    let hybrid_ok = hybrid_25.speedup_vs_dense_plan >= 1.0
        && hybrid
            .iter()
            .all(|r| r.argmax_agreement >= HYBRID_AGREEMENT_FLOOR);
    if !hybrid_ok {
        eprintln!(
            "[perf] HYBRID GATE FAILED: 25% point {:.2}x (need >= 1.0x) or agreement \
             below {HYBRID_AGREEMENT_FLOOR}",
            hybrid_25.speedup_vs_dense_plan
        );
    }
    if full_grid {
        // one int8 tier point: gate the same pattern at int8 (the
        // quantization noise and the N:M truncation interact, so the gate
        // re-measures agreement at the served precision — still against
        // the dense *f32* reference) and time it against the dense int8
        // plan from the same 50% mask, isolating the N:M effect
        let int8_config = NmGateConfig {
            pattern: Sparsity::NM(nm_n, nm_m),
            precision: Precision::Int8,
            ..NmGateConfig::default()
        };
        let mask = ratio_mask(&net, 0.5);
        let dense_plan = net
            .compile_with_precision(&mask, Precision::Int8)
            .expect("compiles int8");
        let mut dense_scratch = PlanScratch::new();
        let dense_s = time_forward(iters, || {
            dense_plan
                .forward_with_scratch(&x, &mut dense_scratch)
                .expect("int8 plan")
        });
        let dense_us = dense_s / iters as f64 * 1e6;
        let gate = gate_nm_plan(&net, &mask, &rates, &eval_set, &int8_config).expect("gates int8");
        let variant = format!("hybrid_int8_nm{nm_n}{nm_m}_50pct");
        let (us, served_nm) = if gate.enabled.is_empty() {
            (dense_us, 0)
        } else {
            let plan = CompiledPlan::compile_sparse_layers(
                &net,
                &mask,
                Precision::Int8,
                &gate.layers,
                None,
            )
            .expect("compiles int8 hybrid");
            let mut scratch = PlanScratch::new();
            let s = time_forward(iters, || {
                plan.forward_with_scratch(&x, &mut scratch)
                    .expect("int8 hybrid plan")
            });
            let us = s / iters as f64 * 1e6;
            if us < dense_us {
                (us, gate.enabled.len())
            } else {
                eprintln!(
                    "[perf] {variant}: gated N:M measured {us:.1} µs vs int8 dense \
                     {dense_us:.1} µs — benefit gate falls back to dense"
                );
                (dense_us, 0)
            }
        };
        hybrid.push(HybridRow {
            variant,
            prune_ratio: 0.5,
            iters,
            dense_plan_us: dense_us,
            hybrid_plan_us: us,
            speedup_vs_dense_plan: dense_us / us,
            argmax_agreement: gate.agreement as f64,
            nm_layers_gated: gate.enabled.len(),
            nm_layers_enabled: served_nm,
            nm_candidates: gate.candidates.len(),
        });
    }
    for row in &hybrid {
        eprintln!(
            "[perf] {:<24} {:>9.1} µs/sample  {:>6.2}x vs dense plan  agree {:.3}  \
             nm {}/{} gated, {} served",
            row.variant,
            row.hybrid_plan_us,
            row.speedup_vs_dense_plan,
            row.argmax_agreement,
            row.nm_layers_gated,
            row.nm_candidates,
            row.nm_layers_enabled
        );
    }
    if let Some(monotone) = monotone_speedup {
        eprintln!(
            "[perf] hybrid sweep monotone (>= 1.0x at every prune point): {}",
            if monotone { "OK" } else { "FAILED" }
        );
    }

    // --- dataset sweeps: 1 thread vs a multi-thread pool ------------------
    // At least 3 threads even on small hosts: this is the configuration
    // where the min-work-per-thread threshold has to keep tiny tail
    // replays serial instead of regressing below single-thread.
    let sweep_threads = default_threads.max(3);
    let sweep_set = images.generate(if smoke_mode() { 6 } else { 24 }, 13);
    let mut sweeps = Vec::new();
    for task in ["profile", "eval"] {
        let mut single_s = 0.0;
        for &threads in &[1usize, sweep_threads] {
            parallel::set_max_threads(threads);
            let t0 = Instant::now();
            match task {
                "profile" => {
                    let rates = FiringRateProfiler::new(3)
                        .profile(&net, &sweep_set)
                        .expect("profiles");
                    std::hint::black_box(rates);
                }
                _ => {
                    let eval = TailEvaluator::new(&net, &sweep_set, 2).expect("evaluates");
                    std::hint::black_box(eval.baseline().mean(None));
                }
            }
            let s = t0.elapsed().as_secs_f64();
            if threads == 1 {
                single_s = s;
            }
            sweeps.push(SweepRow {
                task: task.into(),
                threads,
                samples: sweep_set.len(),
                total_s: s,
                throughput_sps: sweep_set.len() as f64 / s,
                speedup_vs_single: if s > 0.0 { single_s / s } else { 1.0 },
            });
            if sweep_threads == 1 {
                break; // the two configs coincide
            }
        }
    }
    parallel::set_max_threads(default_threads);
    for row in &sweeps {
        eprintln!(
            "[perf] sweep {:<8} threads={:<2} {:>8.1} samples/s  {:>5.2}x vs 1 thread",
            row.task, row.threads, row.throughput_sps, row.speedup_vs_single
        );
    }

    let report = Report {
        host_cores,
        default_threads,
        model: "vgg_tiny(8)".into(),
        argmax_bit_compatible: compatible,
        plan_argmax_bit_compatible: plan_compatible,
        argmax_samples_checked: eval_set.len(),
        int8_argmax_agreement: int8_agreement,
        int8_argmax_samples: eval_set.len(),
        hybrid_agreement_floor: HYBRID_AGREEMENT_FLOOR,
        monotone_speedup,
        forward,
        hybrid,
        sweeps,
    };
    if smoke_mode() {
        eprintln!("[perf] smoke mode: skipping results/ write");
    } else if let Some(path) = write_results_json("BENCH_inference", &report) {
        eprintln!("[perf] results written to {}", path.display());
    }

    // --- telemetry snapshot (CAPNN_TELEMETRY=1 runs only) -----------------
    let mut telemetry_ok = true;
    if let Some(snapshot) = capnn_telemetry::snapshot() {
        // the conv probes are part of this bin's contract: plan compilation
        // must have recorded its panel-packing time, and every timed conv
        // step its effective-throughput gauge
        if !snapshot.histograms.contains_key("plan.conv_pack_ns") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.conv_pack_ns histogram");
        }
        if !snapshot.gauges.keys().any(|k| k.ends_with("_conv_gflops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-conv-step *_conv_gflops gauge");
        }
        // the int8 path ran above, so its probes must have fired too
        if !snapshot.histograms.contains_key("plan.quantize_ns") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.quantize_ns histogram");
        }
        if !snapshot.gauges.keys().any(|k| k.ends_with("_int8_gops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-step *_int8_gops gauge");
        }
        // the hybrid sweep gated + executed N:M candidate plans above, so
        // the N:M pack/density/throughput probes must have fired too
        if !snapshot.histograms.contains_key("plan.nm_pack_ns") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.nm_pack_ns histogram");
        }
        if !snapshot.gauges.contains_key("plan.nm_density") {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: plan.nm_density gauge");
        }
        if !snapshot.gauges.keys().any(|k| k.ends_with("_nm_gflops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-step *_nm_gflops gauge");
        }
        if full_grid && !snapshot.gauges.keys().any(|k| k.ends_with("_nm_int8_gops")) {
            telemetry_ok = false;
            eprintln!("[perf] TELEMETRY MISSING: per-step *_nm_int8_gops gauge");
        }
        if telemetry_ok {
            eprintln!(
                "[perf] telemetry probes present: plan.conv_pack_ns + *_conv_gflops \
                 + plan.quantize_ns + *_int8_gops + plan.nm_pack_ns + plan.nm_density \
                 + *_nm_gflops"
            );
        }
        let json = snapshot.to_json();
        if smoke_mode() {
            eprintln!(
                "[perf] telemetry snapshot: {} counters, {} gauges, {} histograms \
                 ({} bytes; smoke mode: not written)",
                snapshot.counters.len(),
                snapshot.gauges.len(),
                snapshot.histograms.len(),
                json.len()
            );
        } else if let Some(path) = write_results_raw("TELEMETRY_inference", &json) {
            eprintln!("[perf] telemetry snapshot written to {}", path.display());
        }
    }
    if !compatible || !plan_compatible || !int8_ok || !hybrid_ok || !telemetry_ok {
        std::process::exit(1);
    }
}
