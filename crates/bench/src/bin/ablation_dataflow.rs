//! Ablation: accelerator dataflow. The paper's device (Fig. 2) is modeled
//! after the TPU, i.e. weight-stationary. This sweep re-evaluates the
//! Table I energy savings under an output-stationary dataflow and under
//! smaller/larger PE arrays, checking that CAP'NN's *relative* energy
//! savings are robust to the accelerator's microarchitecture — the savings
//! come from removing work, not from a dataflow artifact.

use capnn_accel::{
    network_energy, network_workload, AcceleratorConfig, Dataflow, EnergyModel, SystolicModel,
};
use capnn_bench::experiments::VariantRunner;
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::UserProfile;
use capnn_nn::PruneMask;
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DataflowRow {
    dataflow: String,
    pe: usize,
    relative_energy_k2: f64,
    relative_energy_k5: f64,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_dataflow] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let runner = VariantRunner::new(&rig);
    let model = EnergyModel::paper_table1();

    // fixed masks: one K=2 and one K=5 profile
    let mut rng = XorShiftRng::new(0xDF10);
    let k2 = UserProfile::new(rng.sample_combination(rig.scale.classes, 2), vec![0.8, 0.2])
        .expect("profile");
    let k5 = UserProfile::uniform(rng.sample_combination(rig.scale.classes, 5)).expect("profile");
    let mask2 = runner.mask_for(&k2, capnn_core::Variant::Miseffectual);
    let mask5 = runner.mask_for(&k5, capnn_core::Variant::Miseffectual);
    let full_wl = network_workload(&rig.net, &PruneMask::all_kept(&rig.net)).expect("wl");
    let wl2 = network_workload(&rig.net, &mask2).expect("wl");
    let wl5 = network_workload(&rig.net, &mask5).expect("wl");

    let mut table = Table::new(vec![
        "dataflow".into(),
        "PE array".into(),
        "rel. energy K=2".into(),
        "rel. energy K=5".into(),
    ]);
    let mut rows = Vec::new();
    for dataflow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
        for pe in [8usize, 16, 32] {
            let mut cfg = AcceleratorConfig::tpu_like();
            cfg.pe_rows = pe;
            cfg.pe_cols = pe;
            let systolic = SystolicModel::with_dataflow(cfg, dataflow).expect("config");
            let base = network_energy(&model, &systolic, &full_wl);
            let e2 = network_energy(&model, &systolic, &wl2).relative_to(&base);
            let e5 = network_energy(&model, &systolic, &wl5).relative_to(&base);
            table.row(vec![
                dataflow.to_string(),
                format!("{pe}x{pe}"),
                format!("{e2:.2}"),
                format!("{e5:.2}"),
            ]);
            rows.push(DataflowRow {
                dataflow: dataflow.to_string(),
                pe,
                relative_energy_k2: e2,
                relative_energy_k5: e5,
            });
        }
    }
    println!("\nAblation — accelerator dataflow and array size (CAP'NN-M masks)");
    println!("{table}");
    let spread = rows
        .iter()
        .map(|r| r.relative_energy_k2)
        .fold((f64::MAX, f64::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
    println!(
        "K=2 relative energy across all 6 microarchitectures: {:.2}–{:.2} → savings are workload-driven, not a dataflow artifact",
        spread.0, spread.1
    );

    if let Some(path) = write_results_json("ablation_dataflow", &rows) {
        eprintln!("[ablation_dataflow] results written to {}", path.display());
    }
}
