//! Ablation: the accuracy metric inside the ε bound. The paper bounds
//! *top-1* per-class degradation; since it also reports top-5 accuracy,
//! a natural variant bounds top-k degradation instead — a strictly looser
//! constraint that admits more pruning at the same ε. This sweep measures
//! how much.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnW, DegradationMetric, PruningConfig, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct MetricRow {
    metric: String,
    relative_size: f64,
    top1_degradation: f32,
    topk_degradation: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_metric] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let mut rng = XorShiftRng::new(0xAB1A7E);
    let classes = rng.sample_combination(rig.scale.classes, 3);
    let profile = UserProfile::new(classes, vec![0.6, 0.3, 0.1]).expect("profile");

    let mut table = Table::new(vec![
        "ε metric".into(),
        "rel. size".into(),
        "top-1 degr.".into(),
        "metric degr.".into(),
    ]);
    let mut rows = Vec::new();
    for metric in [
        DegradationMetric::Top1,
        DegradationMetric::TopK(2),
        DegradationMetric::TopK(3),
        DegradationMetric::TopK(5),
    ] {
        let mut config = PruningConfig::paper();
        config.metric = metric;
        let w = CapnnW::new(config).expect("valid");
        let mask = w
            .prune(&rig.net, &rig.rates, &rig.eval, &profile)
            .expect("prune");
        let top1 = rig
            .eval
            .max_degradation_metric(&mask, Some(profile.classes()), DegradationMetric::Top1)
            .expect("top-1 degradation");
        let own = rig
            .eval
            .max_degradation_metric(&mask, Some(profile.classes()), metric)
            .expect("metric degradation");
        assert!(own <= config.epsilon + 1e-4, "ε violated under {metric}");
        let row = MetricRow {
            metric: metric.to_string(),
            relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                / original as f64,
            top1_degradation: top1,
            topk_degradation: own,
        };
        table.row(vec![
            row.metric.clone(),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.top1_degradation * 100.0),
            format!("{:.1}%", row.topk_degradation * 100.0),
        ]);
        rows.push(row);
    }
    println!("\nAblation — ε bound metric (CAP'NN-W, fixed 3-class profile)");
    println!("{table}");
    println!(
        "a looser (top-k) bound admits at least as much pruning; the bounded \
         metric stays ≤ ε while unconstrained top-1 may drift above it"
    );

    if let Some(path) = write_results_json("ablation_metric", &rows) {
        eprintln!("[ablation_metric] results written to {}", path.display());
    }
}
