//! Table II: CAP'NN-M applied *on top of* class-unaware pruned (and
//! fine-tuned) models — the He-style channel-pruning and ThiNet-style
//! baselines — for K ∈ {2..5}. Reports relative model size (relative to the
//! ORIGINAL unpruned network) and top-1/top-5 accuracies over the user
//! classes, without and with CAP'NN.

use capnn_baselines::{ChannelMethod, StructuredPruner};
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnM, TailEvaluator, UserProfile};
use capnn_nn::{model_size, Network, PruneMask};
use capnn_profile::{ConfusionMatrix, FiringRateProfiler};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct StackRow {
    method: String,
    k: usize,
    size_without: f64,
    size_with: f64,
    top1_without: f32,
    top1_with: f32,
    top5_without: f32,
    top5_with: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table2] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original_size = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let calibration = rig.images.generate(4, 0xCA11B);
    let train = rig.images.generate(rig.scale.train_per_class, 0x7EA1);

    let mut rows = Vec::new();
    for (method, fraction) in [
        (ChannelMethod::Reconstruction, 0.04), // ThiNet-style, ≈0.94 rel.
        (ChannelMethod::Activation, 0.06),     // He-style channel pruning, ≈0.90
    ] {
        eprintln!("[table2] preparing {method} baseline (prune + fine-tune)…");
        let pruner = StructuredPruner::new(method, fraction).expect("valid fraction");
        let pruned = pruner
            .prune_and_finetune(&rig.net, &calibration, &train, 3, 0xF17E)
            .expect("baseline pipeline");
        let base_size = pruned.param_count() as f64 / original_size as f64;
        eprintln!("[table2] {method}: relative size without CAP'NN = {base_size:.3}");

        // Cloud-style preprocessing on the pruned+retrained model.
        let profiling = rig.images.generate(rig.scale.profile_per_class, 0xF1E1D);
        let eval_ds = rig.images.generate(rig.scale.eval_per_class, 0xE7A1);
        let rates = FiringRateProfiler::new(rig.config.tail_layers)
            .profile(&pruned, &profiling)
            .expect("profiling");
        let confusion = ConfusionMatrix::measure(&pruned, &profiling).expect("confusion");
        let eval =
            TailEvaluator::new(&pruned, &eval_ds, rig.config.tail_layers).expect("evaluator");
        let m = CapnnM::new(rig.config).expect("config");

        let mut rng = XorShiftRng::new(0x7AB1E2);
        for k in 2usize..=5 {
            let mut acc = StackRow {
                method: method.to_string(),
                k,
                size_without: base_size,
                size_with: 0.0,
                top1_without: 0.0,
                top1_with: 0.0,
                top5_without: 0.0,
                top5_with: 0.0,
            };
            let combos = scale.combos_per_k.max(1);
            for _ in 0..combos {
                let classes = rng.sample_combination(rig.scale.classes, k);
                let profile = UserProfile::uniform(classes).expect("profile");
                let unmasked = PruneMask::all_kept(&pruned);
                acc.top1_without += eval
                    .topk_accuracy(&unmasked, 1, Some(profile.classes()))
                    .expect("top1");
                acc.top5_without += eval
                    .topk_accuracy(&unmasked, 5, Some(profile.classes()))
                    .expect("top5");
                let mask = m
                    .prune(&pruned, &rates, &confusion, &eval, &profile)
                    .expect("CAP'NN-M on pruned model");
                let size = model_size(&pruned, &mask).expect("size");
                acc.size_with += size.total() as f64 / original_size as f64;
                acc.top1_with += eval
                    .topk_accuracy(&mask, 1, Some(profile.classes()))
                    .expect("top1");
                acc.top5_with += eval
                    .topk_accuracy(&mask, 5, Some(profile.classes()))
                    .expect("top5");
            }
            let n = combos as f32;
            acc.size_with /= combos as f64;
            acc.top1_without /= n;
            acc.top1_with /= n;
            acc.top5_without /= n;
            acc.top5_with /= n;
            eprintln!("[table2] {method} K = {k} done");
            rows.push(acc);
        }
        let _ = &pruned as &Network;
    }

    let mut size_table = Table::new(vec![
        "method".into(),
        "K".into(),
        "size w/o CAP'NN".into(),
        "size w/ CAP'NN".into(),
    ]);
    let mut acc_table = Table::new(vec![
        "method".into(),
        "K".into(),
        "top1/top5 w/o".into(),
        "top1/top5 w/".into(),
    ]);
    for r in &rows {
        size_table.row(vec![
            r.method.clone(),
            r.k.to_string(),
            format!("{:.2}", r.size_without),
            format!("{:.2}", r.size_with),
        ]);
        acc_table.row(vec![
            r.method.clone(),
            r.k.to_string(),
            format!(
                "{:.1}% / {:.1}%",
                r.top1_without * 100.0,
                r.top5_without * 100.0
            ),
            format!("{:.1}% / {:.1}%", r.top1_with * 100.0, r.top5_with * 100.0),
        ]);
    }
    println!("\nTable II — CAP'NN-M stacked on class-unaware pruned models");
    println!("Relative model size (vs original unpruned network):");
    println!("{size_table}");
    println!("Top-1 / Top-5 accuracy over user classes:");
    println!("{acc_table}");

    if let Some(path) = write_results_json("table2_stacking", &rows) {
        eprintln!("[table2] results written to {}", path.display());
    }
}
