//! Figure 6: CAP'NN-M model-size vs accuracy trade-off as the number of
//! user-specified classes `K` grows toward the full class count.
//!
//! The paper sweeps K up to 100 on a 1000-class model (10 % of the label
//! space, where the relative size approaches 0.9 and further pruning stops
//! paying). Our substrate model has `CAPNN_SCALE`-many classes, so the sweep
//! covers the same *fractions* of the label space and the same two takeaways
//! are checked: size grows with K, and accuracy degradation stays within ε
//! regardless of K.

use capnn_bench::experiments::{distributions_for_k, VariantRunner};
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::UserProfile;
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepRow {
    k: usize,
    fraction_of_classes: f64,
    relative_size: f64,
    top1: f32,
    baseline_top1: f32,
    max_class_degradation: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig6] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let runner = VariantRunner::new(&rig);
    let total = rig.scale.classes;
    let ks: Vec<usize> = (1..=6)
        .map(|i| (total * i / 6).max(2))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut table = Table::new(vec![
        "K".into(),
        "K/|C|".into(),
        "rel. size".into(),
        "top-1".into(),
        "baseline".into(),
        "max class degr.".into(),
    ]);
    let mut rows = Vec::new();
    let mut rng = XorShiftRng::new(0xF16);
    for &k in &ks {
        let mut size_sum = 0.0f64;
        let mut top1_sum = 0.0f32;
        let mut base_sum = 0.0f32;
        let mut degr_max = 0.0f32;
        let combos = scale.combos_per_k.max(1);
        let dists = distributions_for_k(k);
        let mut cells = 0usize;
        for _ in 0..combos {
            let classes = rng.sample_combination(total, k);
            for dist in &dists {
                let profile =
                    UserProfile::with_distribution(classes.clone(), dist).expect("profile");
                let mask = runner.mask_for(&profile, capnn_core::Variant::Miseffectual);
                let cell = runner.evaluate(&mask, &profile);
                let (b1, _) = runner.baseline(&profile);
                let degr = rig
                    .eval
                    .max_degradation(&mask, Some(profile.classes()))
                    .expect("degradation");
                size_sum += cell.relative_size;
                top1_sum += cell.top1;
                base_sum += b1;
                degr_max = degr_max.max(degr);
                cells += 1;
            }
        }
        let n = cells.max(1);
        let row = SweepRow {
            k,
            fraction_of_classes: k as f64 / total as f64,
            relative_size: size_sum / n as f64,
            top1: top1_sum / n as f32,
            baseline_top1: base_sum / n as f32,
            max_class_degradation: degr_max,
        };
        table.row(vec![
            k.to_string(),
            format!("{:.0}%", row.fraction_of_classes * 100.0),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.top1 * 100.0),
            format!("{:.1}%", row.baseline_top1 * 100.0),
            format!("{:.1}%", row.max_class_degradation * 100.0),
        ]);
        eprintln!("[fig6] K = {k} done");
        rows.push(row);
    }
    println!(
        "\nFigure 6 — CAP'NN-M size/accuracy trade-off vs K (ε = {:.0}%)",
        rig.config.epsilon * 100.0
    );
    println!("{table}");

    // Key takeaways from the paper
    let monotone = rows
        .windows(2)
        .all(|w| w[1].relative_size >= w[0].relative_size - 0.02);
    let bounded = rows
        .iter()
        .all(|r| r.max_class_degradation <= rig.config.epsilon + 1e-4);
    println!("size grows with K: {monotone}; degradation ≤ ε everywhere: {bounded}");

    if let Some(path) = write_results_json("fig6_tradeoff", &rows) {
        eprintln!("[fig6] results written to {}", path.display());
    }
}
