//! Fleet-scale plan-cache behaviour under Zipfian load.
//!
//! The fleet scenario: one cloud, a large population of *distinct* user
//! profiles (same class-popularity structure real mobile usage shows —
//! popular classes dominate), requests drawn Zipfian over profile rank.
//! The [`FleetPlanCache`] collapses that population three ways — profile
//! memoization, mask canonicalization and shared weight panels — and holds
//! the resident compiled plans under a byte budget with LRU eviction.
//!
//! Each scenario row replays the *same* request stream against a fresh
//! cache: unbounded (the per-mask upper bound), the working budget, a
//! deliberately starved budget, and an int8 run of the working budget.
//! Emits `results/BENCH_cache.json` with hit rate, evictions, exact
//! resident bytes, compile amortization and p50/p95 serve latency, and
//! checks that cache-served plans are argmax-bit-compatible with a fresh
//! per-profile compile.
//!
//! Smoke mode (`CAPNN_BENCH_SMOKE=1`) keeps the 10^5-profile population
//! but trims the request stream, skips writing `results/`, and gates on
//! the working-budget row: hit rate ≥ 90 %, resident ≤ budget, argmax
//! bit-compatible.

use capnn_bench::loadgen::{ZipfLoad, ZipfLoadConfig, DEFAULT_SEED};
use capnn_bench::write_results_json;
use capnn_core::{CloudServer, FleetPlanCache, PruningConfig, UserProfile, Variant};
use capnn_data::{VectorClusters, VectorClustersConfig};
use capnn_nn::{NetworkBuilder, Precision, Trainer, TrainerConfig};
use capnn_tensor::{Tensor, XorShiftRng};
use serde::Serialize;
use std::time::Instant;

const CLASSES: usize = 16;
const INPUT_DIM: usize = 24;
/// The working fleet budget the smoke gate checks: holds the hot set but
/// not the full mask population, so the LRU path is actually exercised.
const WORKING_BUDGET: u64 = 768 * 1024;
/// A deliberately starved budget, to exercise heavy eviction churn.
const TIGHT_BUDGET: u64 = 256 * 1024;

fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

#[derive(Debug, Serialize)]
struct ScenarioRow {
    scenario: String,
    precision: String,
    budget_bytes: Option<u64>,
    requests: usize,
    distinct_profiles: usize,
    /// Distinct canonical masks the stream produced (= compiles an
    /// unbounded cache pays; a budgeted cache may recompile after
    /// eviction).
    unique_masks: usize,
    hits: u64,
    /// Misses = plan compiles (the mask memo still spares re-pruning).
    misses: u64,
    hit_rate: f64,
    evictions: u64,
    /// Exact end-of-run residency (amortized across shared panels).
    resident_bytes: u64,
    resident_within_budget: bool,
    /// Distinct profiles per compile — the fleet amortization factor.
    compile_amortization_vs_profiles: f64,
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    /// p95 serve latency relative to the unbounded row (None for the
    /// unbounded row itself).
    p95_vs_unbounded_ratio: Option<f64>,
    /// Live interned kernels in the cloud's panel pool at end of run.
    pool_live_kernels: usize,
    argmax_bit_compatible: bool,
    argmax_samples_checked: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    classes: usize,
    input_dim: usize,
    class_zipf_s: f64,
    rank_zipf_s: f64,
    rows: Vec<ScenarioRow>,
}

/// Replays `stream` (indices into `profiles`) through a fresh cache and
/// measures it. `unbounded_p95_us` threads the baseline row's p95 in for
/// the relative column.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &str,
    cloud: &mut CloudServer,
    profiles: &[UserProfile],
    stream: &[usize],
    budget: Option<u64>,
    precision: Precision,
    unbounded_p95_us: Option<f64>,
    rng: &mut XorShiftRng,
) -> ScenarioRow {
    let mut cache = FleetPlanCache::with_budget(16, budget).expect("cache");
    let mut lat_ns: Vec<u64> = Vec::with_capacity(stream.len());
    for &idx in stream {
        let t0 = Instant::now();
        std::hint::black_box(
            cache
                .plan_for(cloud, &profiles[idx], Variant::Basic, precision)
                .expect("plan"),
        );
        lat_ns.push(t0.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    let mean_us = lat_ns.iter().sum::<u64>() as f64 / lat_ns.len() as f64 / 1e3;
    let (p50_us, p95_us) = (pct(0.50), pct(0.95));

    // cache-served plans must be argmax-bit-compatible with a fresh
    // per-profile compile of the profile's own mask (slack is 0, so the
    // canonical mask IS the profile's mask — outputs are bitwise equal)
    let check = 8.min(profiles.len());
    let mut compatible = true;
    for i in 0..check {
        let profile = &profiles[stream[i * stream.len() / check]];
        let served = cache
            .plan_for(cloud, profile, Variant::Basic, precision)
            .expect("served plan");
        let mask = cloud.prune_mask(profile, Variant::Basic).expect("mask");
        let fresh = cloud
            .network()
            .compile_with_precision(&mask, precision)
            .expect("fresh compile");
        for _ in 0..4 {
            let x = Tensor::uniform(&[INPUT_DIM], -1.0, 1.0, rng);
            let a = served.forward(&x).expect("served fwd");
            let b = fresh.forward(&x).expect("fresh fwd");
            if a.as_slice() != b.as_slice() || a.argmax() != b.argmax() {
                compatible = false;
                eprintln!("[cache] ARGMAX/BITWISE MISMATCH ({name})");
            }
        }
    }

    let stats = cache.stats();
    let resident = cache.resident_bytes();
    let row = ScenarioRow {
        scenario: name.into(),
        precision: format!("{precision:?}"),
        budget_bytes: budget,
        requests: stream.len(),
        distinct_profiles: profiles.len(),
        unique_masks: cache.unique_masks(),
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        evictions: stats.evictions,
        resident_bytes: resident,
        resident_within_budget: budget.is_none_or(|b| resident <= b),
        compile_amortization_vs_profiles: profiles.len() as f64 / stats.misses.max(1) as f64,
        p50_us,
        p95_us,
        mean_us,
        p95_vs_unbounded_ratio: unbounded_p95_us.map(|base| p95_us / base),
        pool_live_kernels: cloud.panel_pool().live_kernels(),
        argmax_bit_compatible: compatible,
        argmax_samples_checked: check,
    };
    eprintln!(
        "[cache] {name:<16} {:>8} reqs  hit {:>6.2}%  compiles {:>5}  evict {:>6}  \
         resident {:>9} B  p50 {:>6.2} µs  p95 {:>8.2} µs",
        row.requests,
        row.hit_rate * 100.0,
        row.misses,
        row.evictions,
        row.resident_bytes,
        row.p50_us,
        row.p95_us,
    );
    row
}

/// Smoke gate over the working-budget row. Returns `true` on failure.
fn smoke_gate(rows: &[ScenarioRow]) -> bool {
    let Some(row) = rows.iter().find(|r| r.scenario == "fleet_working") else {
        eprintln!("[cache] smoke gate: no fleet_working row, nothing to check");
        return false;
    };
    let mut failed = false;
    if row.hit_rate < 0.90 {
        eprintln!(
            "[cache] smoke gate FAILED: hit rate {:.2}% < 90%",
            row.hit_rate * 100.0
        );
        failed = true;
    }
    if !row.resident_within_budget {
        eprintln!(
            "[cache] smoke gate FAILED: resident {} B over budget {:?}",
            row.resident_bytes, row.budget_bytes
        );
        failed = true;
    }
    if !failed {
        eprintln!(
            "[cache] smoke gate: hit rate {:.2}% ≥ 90%, resident {} B ≤ budget {} B",
            row.hit_rate * 100.0,
            row.resident_bytes,
            row.budget_bytes.unwrap_or(0)
        );
    }
    failed
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let num_profiles = 100_000;
    let num_requests = if smoke_mode() { 120_000 } else { 300_000 };
    eprintln!(
        "[cache] {num_profiles} distinct profiles, {num_requests} Zipfian requests, \
         host cores: {host_cores}"
    );

    // a trained 16-class cloud; CAP'NN-B matrices precompute on first use
    let gen = VectorClusters::new(VectorClustersConfig::easy(CLASSES, INPUT_DIM)).expect("gen");
    let mut net = NetworkBuilder::mlp(&[INPUT_DIM, 64, 48, CLASSES], 11)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 10,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, gen.generate(40, 1).samples())
        .expect("training");
    let mut cloud = CloudServer::new(
        net,
        &gen.generate(30, 2),
        &gen.generate(20, 3),
        PruningConfig::fast(),
    )
    .expect("cloud");

    let mut rng = XorShiftRng::new(DEFAULT_SEED);
    let load = ZipfLoad::new(ZipfLoadConfig::fleet(CLASSES, num_profiles), &mut rng);
    let profiles: &[UserProfile] = load.profiles();
    let stream: Vec<usize> = load.stream(num_requests, &mut rng);

    let mut rows = Vec::new();
    rows.push(run_scenario(
        "unbounded",
        &mut cloud,
        profiles,
        &stream,
        None,
        Precision::F32,
        None,
        &mut rng,
    ));
    let base_p95 = rows[0].p95_us;
    rows.push(run_scenario(
        "fleet_working",
        &mut cloud,
        profiles,
        &stream,
        Some(WORKING_BUDGET),
        Precision::F32,
        Some(base_p95),
        &mut rng,
    ));
    rows.push(run_scenario(
        "fleet_tight",
        &mut cloud,
        profiles,
        &stream,
        Some(TIGHT_BUDGET),
        Precision::F32,
        Some(base_p95),
        &mut rng,
    ));
    rows.push(run_scenario(
        "fleet_working_int8",
        &mut cloud,
        profiles,
        &stream,
        Some(WORKING_BUDGET),
        Precision::Int8,
        Some(base_p95),
        &mut rng,
    ));

    let all_compatible = rows.iter().all(|r| r.argmax_bit_compatible);
    let all_within = rows.iter().all(|r| r.resident_within_budget);
    let report = Report {
        host_cores,
        classes: CLASSES,
        input_dim: INPUT_DIM,
        class_zipf_s: load.config().class_zipf_s,
        rank_zipf_s: load.config().rank_zipf_s,
        rows,
    };
    if smoke_mode() {
        eprintln!("[cache] smoke mode: skipping results/ write");
    } else if let Some(path) = write_results_json("BENCH_cache", &report) {
        eprintln!("[cache] results written to {}", path.display());
    }

    let gate_failed = smoke_mode() && smoke_gate(&report.rows);
    if !all_compatible || !all_within || gate_failed {
        std::process::exit(1);
    }
}
