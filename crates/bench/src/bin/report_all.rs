//! Digest: reads every JSON result in `results/` (as produced by the
//! experiment binaries / `scripts/run_all_experiments.sh`) and prints a
//! one-page summary with the paper-shape checks, suitable for pasting into
//! a lab notebook.

use capnn_bench::Table;
use serde_json::Value;
use std::path::Path;

fn load(name: &str) -> Option<Value> {
    let path = Path::new("results").join(format!("{name}.json"));
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

fn f(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn main() {
    println!("CAP'NN reproduction — result digest (from results/*.json)\n");
    let mut checks = Table::new(vec!["check".into(), "status".into(), "evidence".into()]);
    let mut missing = Vec::new();

    if let Some(rows) = load("fig4_model_size").and_then(|v| v.as_array().cloned()) {
        let ordered = rows.iter().all(|r| {
            let b = f(&r["basic"], "relative_size");
            let w = f(&r["weighted"], "relative_size");
            let m = f(&r["miseffectual"], "relative_size");
            w <= b + 0.03 && m <= w + 0.03
        });
        checks.row(vec![
            "Fig.4 size ordering B ≥ W ≥ M".into(),
            if ordered { "PASS" } else { "FAIL" }.into(),
            format!("{} scenarios", rows.len()),
        ]);
    } else {
        missing.push("fig4_model_size");
    }

    if let Some(rows) = load("fig5_accuracy").and_then(|v| v.as_array().cloned()) {
        let gains = rows
            .iter()
            .filter(|r| f(&r["miseffectual"], "top1") > f(r, "baseline_top1"))
            .count();
        checks.row(vec![
            "Fig.5 CAP'NN-M improves top-1 somewhere".into(),
            if gains > 0 { "PASS" } else { "FAIL" }.into(),
            format!("{gains}/{} scenarios improved", rows.len()),
        ]);
    } else {
        missing.push("fig5_accuracy");
    }

    if let Some(rows) = load("fig6_tradeoff").and_then(|v| v.as_array().cloned()) {
        let monotone = rows
            .windows(2)
            .all(|w| f(&w[1], "relative_size") >= f(&w[0], "relative_size") - 0.05);
        let bounded = rows.iter().all(|r| f(r, "max_class_degradation") <= 0.031);
        checks.row(vec![
            "Fig.6 size grows with K, degradation ≤ ε".into(),
            if monotone && bounded { "PASS" } else { "FAIL" }.into(),
            format!("K sweep of {}", rows.len()),
        ]);
    } else {
        missing.push("fig6_tradeoff");
    }

    if let Some(rows) = load("table1_energy").and_then(|v| v.as_array().cloned()) {
        let monotone = rows
            .windows(2)
            .all(|w| f(&w[1], "relative_energy") >= f(&w[0], "relative_energy") - 0.05);
        let first = rows.first().map(|r| f(r, "relative_energy")).unwrap_or(1.0);
        checks.row(vec![
            "Table I energy rises with K, big savings at K=2".into(),
            if monotone && first < 0.6 {
                "PASS"
            } else {
                "FAIL"
            }
            .into(),
            format!("K=2 relative energy {first:.2}"),
        ]);
    } else {
        missing.push("table1_energy");
    }

    if let Some(rows) = load("table2_stacking").and_then(|v| v.as_array().cloned()) {
        let shrinks = rows
            .iter()
            .all(|r| f(r, "size_with") < f(r, "size_without"));
        checks.row(vec![
            "Table II stacking shrinks class-unaware pruned models".into(),
            if shrinks { "PASS" } else { "FAIL" }.into(),
            format!("{} method×K cells", rows.len()),
        ]);
    } else {
        missing.push("table2_stacking");
    }

    if let Some(rows) = load("table3_captor").and_then(|v| v.as_array().cloned()) {
        let small_win = rows
            .first()
            .map(|r| f(r, "capnn_energy") < f(r, "captor_energy"))
            .unwrap_or(false);
        checks.row(vec![
            "Table III CAP'NN beats CAPTOR-style at 10% of classes".into(),
            if small_win { "PASS" } else { "FAIL" }.into(),
            rows.first()
                .map(|r| {
                    format!(
                        "{:.2} vs {:.2}",
                        f(r, "capnn_energy"),
                        f(r, "captor_energy")
                    )
                })
                .unwrap_or_default(),
        ]);
    } else {
        missing.push("table3_captor");
    }

    if let Some(v) = load("memory_overhead") {
        let pct = f(&v, "overhead_pct_3bit");
        checks.row(vec![
            "§V-C firing-rate overhead ≈ 1.3% of model".into(),
            if (pct - 1.3).abs() < 0.5 {
                "PASS"
            } else {
                "FAIL"
            }
            .into(),
            format!("{pct:.2}%"),
        ]);
    } else {
        missing.push("memory_overhead");
    }

    println!("{checks}");
    if !missing.is_empty() {
        println!(
            "missing results (run scripts/run_all_experiments.sh): {}",
            missing.join(", ")
        );
    }
}
