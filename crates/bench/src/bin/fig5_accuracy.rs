//! Figure 5: top-1 accuracy of the three CAP'NN variants across the 24
//! `(K, usage)` configurations (top-5 is reported alongside, as in the
//! paper's prose), plus the K = 10 summary quoted in the abstract.

use capnn_bench::experiments::VariantRunner;
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_data::{paper_fig4_scenarios, UsageDistribution, UsageScenario};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig5] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    eprintln!("[fig5] running CAP'NN-B offline pass (Algorithm 1)…");
    let runner = VariantRunner::new(&rig);

    let mut table = Table::new(vec![
        "K".into(),
        "usage".into(),
        "baseline".into(),
        "CAP'NN-B".into(),
        "CAP'NN-W".into(),
        "CAP'NN-M".into(),
        "M gain".into(),
    ]);
    let mut rows = Vec::new();
    for (i, scenario) in paper_fig4_scenarios().iter().enumerate() {
        let row = runner.run_scenario(scenario, scale.combos_per_k, 0xF160 + i as u64);
        table.row(vec![
            row.k.to_string(),
            row.distribution.clone(),
            format!("{:.1}%", row.baseline_top1 * 100.0),
            format!("{:.1}%", row.basic.top1 * 100.0),
            format!("{:.1}%", row.weighted.top1 * 100.0),
            format!("{:.1}%", row.miseffectual.top1 * 100.0),
            format!(
                "{:+.1}%",
                (row.miseffectual.top1 - row.baseline_top1) * 100.0
            ),
        ]);
        eprintln!("[fig5] {scenario} done");
        rows.push(row);
    }
    println!(
        "\nFigure 5 — top-1 accuracy over user classes, avg over {} combos per cell",
        scale.combos_per_k
    );
    println!("{table}");

    // K = 10 summary (paper: +2.3% top-1, +3.2% top-5, relative size 0.48)
    let k10 = 10.min(rig.scale.classes.saturating_sub(1)).max(2);
    let scenario = UsageScenario::new(k10, UsageDistribution::uniform(k10)).expect("uniform fits");
    let row = runner.run_scenario(&scenario, scale.combos_per_k, 0xCAFE);
    println!(
        "K = {k10} summary (CAP'NN-M): top-1 {:+.1}% | top-5 {:+.1}% | relative size {:.2}",
        (row.miseffectual.top1 - row.baseline_top1) * 100.0,
        (row.miseffectual.top5 - row.baseline_top5) * 100.0,
        row.miseffectual.relative_size
    );
    rows.push(row);

    if let Some(path) = write_results_json("fig5_accuracy", &rows) {
        eprintln!("[fig5] results written to {}", path.display());
    }
}
