//! Analysis: class selectivity by depth. The paper's footnote 3 restricts
//! pruning to the last layers because "earlier layers are typically not
//! class-specific"; this binary profiles *every* prunable layer of the
//! substrate network and reports per-layer selectivity, checking that the
//! class-selectivity index indeed rises toward the output.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_profile::{layer_selectivity, FiringRateProfiler};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[selectivity] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    // profile ALL prunable layers, not just the tail
    let all = rig.net.prunable_layers().len();
    let profiling = rig.images.generate(rig.scale.profile_per_class, 0xF1E1D);
    let rates = FiringRateProfiler::new(all)
        .profile(&rig.net, &profiling)
        .expect("profiling");
    let summaries = layer_selectivity(&rates);

    let mut table = Table::new(vec![
        "layer".into(),
        "kind".into(),
        "units".into(),
        "mean selectivity".into(),
        "mean entropy (bits)".into(),
        "silent".into(),
    ]);
    for s in &summaries {
        table.row(vec![
            s.layer.to_string(),
            rig.net.layers()[s.layer].kind().to_string(),
            s.units.to_string(),
            format!("{:.3}", s.mean_index),
            format!("{:.2}", s.mean_entropy_bits),
            format!("{:.0}%", s.silent_fraction * 100.0),
        ]);
    }
    println!("\nAnalysis — class selectivity by depth (footnote 3 evidence)");
    println!("{table}");

    let first = summaries.first().expect("at least one layer").mean_index;
    // the most selective hidden layer (output layer rates are trivially
    // class-aligned, so compare hidden layers)
    let hidden_max = summaries[..summaries.len().saturating_sub(1)]
        .iter()
        .map(|s| s.mean_index)
        .fold(f32::MIN, f32::max);
    println!(
        "selectivity rises with depth: first prunable layer {:.3} vs best hidden layer {:.3} → {}",
        first,
        hidden_max,
        if hidden_max > first {
            "confirmed"
        } else {
            "NOT confirmed on this substrate"
        }
    );

    if let Some(path) = write_results_json("analysis_selectivity", &summaries) {
        eprintln!("[selectivity] results written to {}", path.display());
    }
}
