//! Drift-to-swap pipeline, measured end to end: does the serving
//! front-end notice class-usage drift from live traffic and hot-swap
//! plans without a latency cliff or a stale response?
//!
//! The scenario: a Zipfian fleet (rank skew 1.5 so the hot users carry
//! the stream) serves phase A with inputs and labels drawn from each
//! profile's own deployed classes — monitors see no drift and served
//! top-1 accuracy is high. At the phase boundary every request shifts by
//! a fixed class offset: the plans bound before the shift were
//! specialized away from exactly the classes users now ask about (the
//! pruning config below keeps only units that always fire for the
//! profile's classes), so served top-1 accuracy on the shifted inputs
//! collapses. The background swap worker must re-profile, recompile and
//! rebind off the request path until accuracy recovers — while p99 stays
//! within a small factor of phase A's (zero downtime) and the cache
//! keeps releasing stale plans.
//!
//! Reported: phase A/B latency percentiles, time-to-first-swap, early
//! vs late phase-B top-1 accuracy, swap/noop/failure counters, cache
//! release and eviction counts, and a staleness probe — after the probe
//! user's swap, its served output must be bitwise the output of the plan
//! the fleet cache now resolves for it, and the previously-misclassified
//! shifted-class input must be classified correctly.
//!
//! Emits `results/BENCH_drift.json` in both full and smoke mode. Gates
//! (enforced in both modes): at least one swap, no failed swaps, no
//! failed/rejected responses, accuracy recovery (late − early ≥ 0.4 and
//! late ≥ 0.7), p99(B) ≤ max(3·p99(A), 5 ms), and the staleness probe.

use capnn_bench::loadgen::{ZipfLoad, ZipfLoadConfig, DEFAULT_SEED};
use capnn_bench::write_results_json;
use capnn_core::{
    CloudServer, DriftConfig, DriftPolicy, FleetPlanCache, InferenceServer, PruningConfig,
    ServeRequest, ServerConfig, SharedFleetCache, UserProfile, Variant,
};
use capnn_data::{VectorClusters, VectorClustersConfig};
use capnn_nn::{NetworkBuilder, Precision, Trainer, TrainerConfig};
use capnn_tensor::XorShiftRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const CLASSES: usize = 16;
const INPUT_DIM: usize = 24;
const NUM_PROFILES: usize = 256;
const WAVE: usize = 128;
const QUEUE_CAPACITY: usize = 256;
const WEIGHT_STEPS: u16 = 16;
/// Every phase-B label is the user's own class rotated by this offset —
/// guaranteed drift for every profile whose class set is not shift-closed.
const LABEL_SHIFT: usize = 5;

fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The bench fleet's drift config: deliberate enough that the stale
/// regime is visible in the accuracy record (a hot user serves ~64
/// shifted observations before its monitor may flip), fast enough that
/// the fleet converges well within phase B, and with a short cooldown so
/// two-class profiles converge through a second swap.
fn drift_config() -> DriftConfig {
    DriftConfig {
        policy: DriftPolicy::builder()
            .divergence_threshold(0.25)
            .min_observations(64)
            .profile_k(2)
            .build()
            .expect("policy"),
        half_life: 128.0,
        check_interval: 16,
        cooldown: 64,
    }
}

/// A trained 16-class MLP cloud (the `perf_server` smoke shape — the
/// drift machinery, not GEMM time, is what this bench measures) plus the
/// cluster generator the bench draws class-conditional inputs from.
///
/// The pruning config specializes hard: `t_start = 1.0` keeps only units
/// that fire on *every* profiling sample of a profile class, and
/// `epsilon = 1.0` waives the cross-class degradation bound (the default
/// ε = 3 % bound holds *all* classes near baseline, which would leave a
/// stale plan accurate on drifted classes and nothing for the swap to
/// recover). Own-class accuracy stays ≈ 100 % — the kept units are the
/// ones that carry the profile's classes — while off-profile accuracy
/// collapses, which is exactly the degraded regime drift detection must
/// repair.
fn drift_cloud() -> (CloudServer, VectorClusters) {
    let gen = VectorClusters::new(VectorClustersConfig::easy(CLASSES, INPUT_DIM)).expect("gen");
    let mut net = NetworkBuilder::mlp(&[INPUT_DIM, 64, 48, CLASSES], 11)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, gen.generate(30, 1).samples())
        .expect("training");
    let cloud = CloudServer::new(
        net,
        &gen.generate(20, 2),
        &gen.generate(12, 3),
        PruningConfig {
            epsilon: 1.0,
            t_start: 1.0,
            step: 0.05,
            ..PruningConfig::fast()
        },
    )
    .expect("cloud");
    (cloud, gen)
}

/// Samples one of the profile's own classes with probability equal to its
/// deployed weight, so phase-A label streams match the deployed profiles.
fn own_class(profile: &UserProfile, rng: &mut XorShiftRng) -> usize {
    let u = rng.next_uniform();
    let mut acc = 0.0f32;
    for (&c, &w) in profile.classes().iter().zip(profile.weights()) {
        acc += w;
        if u < acc {
            return c;
        }
    }
    *profile.classes().last().expect("non-empty profile")
}

#[derive(Debug, Serialize)]
struct PhaseRow {
    requests: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    /// Fraction of responses whose served top-1 class equals the request
    /// label (the input is drawn from the label's cluster).
    live_rate: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    smoke: bool,
    num_profiles: usize,
    classes: usize,
    wave: usize,
    label_shift: usize,
    budget_bytes: u64,
    phase_a: PhaseRow,
    phase_b: PhaseRow,
    /// Top-1 accuracy just after the shift (a fixed window, so the dip is
    /// visible at any run length) vs the last quarter of phase B — the
    /// recovery the swap pipeline exists to produce.
    early_live_rate: f64,
    late_live_rate: f64,
    time_to_first_swap_ms: Option<f64>,
    swaps: u64,
    swap_noops: u64,
    swap_failed: u64,
    failed: u64,
    rejected: u64,
    cache_released: u64,
    cache_evictions: u64,
    staleness_probe_bitwise: bool,
    probe_top1_recovered: bool,
}

/// One closed-loop wave: submit `n`, wait for all, record latency and
/// label-correctness per response.
struct WaveStats {
    lat_us: Vec<f64>,
    live: Vec<bool>,
    failed: u64,
}

fn drive_wave(
    server: &InferenceServer,
    load: &ZipfLoad,
    gen: &VectorClusters,
    n: usize,
    shift: usize,
    out: &mut WaveStats,
    rng: &mut XorShiftRng,
) {
    let picks: Vec<(usize, usize)> = (0..n)
        .map(|_| {
            let idx = load.sample(rng);
            let label = (own_class(&load.profiles()[idx], rng) + shift) % CLASSES;
            (idx, label)
        })
        .collect();
    let handles: Vec<_> = picks
        .iter()
        .map(|&(idx, label)| {
            let input = gen.sample(label, rng);
            server
                .submit(
                    ServeRequest::new(load.profiles()[idx].clone(), input).observed_class(label),
                )
                .expect("admitted (wave <= capacity)")
        })
        .collect();
    for (h, &(_, label)) in handles.into_iter().zip(&picks) {
        match h.wait() {
            Ok(resp) => {
                out.lat_us
                    .push((resp.dwell + resp.exec).as_secs_f64() * 1e6);
                out.live.push(resp.output.argmax() == Some(label));
            }
            Err(_) => out.failed += 1,
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    }
}

fn phase_row(stats: &WaveStats) -> PhaseRow {
    let mut lat = stats.lat_us.clone();
    lat.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let live = stats.live.iter().filter(|&&l| l).count();
    PhaseRow {
        requests: lat.len(),
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
        mean_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
        live_rate: live as f64 / stats.live.len().max(1) as f64,
    }
}

/// Rate over a slice of the correctness record.
fn live_rate(live: &[bool]) -> f64 {
    live.iter().filter(|&&l| l).count() as f64 / live.len().max(1) as f64
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let smoke = smoke_mode();
    let (phase_a_n, phase_b_n) = if smoke {
        (3_000, 6_000)
    } else {
        (8_000, 24_000)
    };
    eprintln!(
        "[drift] {NUM_PROFILES} profiles, phase A {phase_a_n} + phase B {phase_b_n} requests, \
         label shift +{LABEL_SHIFT}, host cores: {host_cores}"
    );

    let mut rng = XorShiftRng::new(DEFAULT_SEED);
    let load = ZipfLoad::new(
        ZipfLoadConfig {
            num_profiles: NUM_PROFILES,
            classes: CLASSES,
            class_zipf_s: 1.3,
            // heavier rank skew than the serving bench: the hot users must
            // accumulate enough phase-B observations to swap within the run
            rank_zipf_s: 1.5,
            min_classes: 1,
            max_classes: 2,
        },
        &mut rng,
    );

    // budget: 1.3× the unbounded residency of a phase-A-length replay —
    // room for the hot set, tight enough that stale plans must go
    let (cloud, gen) = drift_cloud();
    let shared = Arc::new(SharedFleetCache::new(
        cloud,
        FleetPlanCache::with_budget(WEIGHT_STEPS, None).expect("cache"),
    ));
    for _ in 0..phase_a_n {
        let profile = &load.profiles()[load.sample(&mut rng)];
        shared
            .plan_for(profile, Variant::Basic, Precision::F32)
            .expect("sizing plan");
    }
    let budget = shared.resident_bytes() * 13 / 10;
    shared.reset_cache(
        FleetPlanCache::with_budget(WEIGHT_STEPS, Some(budget)).expect("budgeted cache"),
    );
    eprintln!("[drift] cache budget {budget} B");

    let server = InferenceServer::start_with_cache(
        Arc::clone(&shared),
        ServerConfig {
            workers: host_cores.min(4),
            queue_capacity: QUEUE_CAPACITY,
            drift: Some(drift_config()),
            ..ServerConfig::default()
        },
    )
    .expect("server");

    // phase A: labels match the deployed profiles — no monitor may trip
    let mut stats_a = WaveStats {
        lat_us: Vec::with_capacity(phase_a_n),
        live: Vec::with_capacity(phase_a_n),
        failed: 0,
    };
    let mut remaining = phase_a_n;
    while remaining > 0 {
        let wave = WAVE.min(remaining);
        remaining -= wave;
        drive_wave(&server, &load, &gen, wave, 0, &mut stats_a, &mut rng);
    }
    let phase_a_swaps = server.stats().swaps;

    // staleness probe setup: a single-class user whose pre-shift plan we
    // snapshot now, so the post-swap response provably changed plans; the
    // probe input comes from the *shifted* class's cluster, which the
    // deployed plan was specialized away from
    let probe_idx = load
        .profiles()
        .iter()
        .position(|p| p.classes().len() == 1)
        .unwrap_or(0);
    let probe_user = load.profiles()[probe_idx].clone();
    let probe_class = probe_user.classes()[0];
    let probe_label = (probe_class + LABEL_SHIFT) % CLASSES;
    let probe_x = gen.sample(probe_label, &mut XorShiftRng::new(0xD21F7));
    let pre_swap = server
        .infer(ServeRequest::new(probe_user.clone(), probe_x.clone()))
        .expect("probe serve")
        .output;

    // phase B: every request shifts — the bound plans were specialized
    // away from the shifted classes, so served top-1 accuracy collapses
    // until the swap pipeline catches up
    let mut stats_b = WaveStats {
        lat_us: Vec::with_capacity(phase_b_n),
        live: Vec::with_capacity(phase_b_n),
        failed: 0,
    };
    let t_shift = Instant::now();
    let mut first_swap: Option<f64> = None;
    let mut remaining = phase_b_n;
    while remaining > 0 {
        let wave = WAVE.min(remaining);
        remaining -= wave;
        drive_wave(
            &server,
            &load,
            &gen,
            wave,
            LABEL_SHIFT,
            &mut stats_b,
            &mut rng,
        );
        if first_swap.is_none() && server.stats().swaps > phase_a_swaps {
            first_swap = Some(t_shift.elapsed().as_secs_f64() * 1e3);
        }
    }

    // staleness probe: keep serving the probe user's shifted traffic until
    // the served top-1 matches the shifted label, then the response must
    // be bitwise the plan the fleet cache now resolves for that profile
    let mut probe_live = false;
    for i in 0..3_000u64 {
        let resp = server
            .infer(
                ServeRequest::new(probe_user.clone(), probe_x.clone()).observed_class(probe_label),
            )
            .expect("probe serve");
        if resp.output.argmax() == Some(probe_label) {
            probe_live = true;
            break;
        }
        if i % 500 == 499 {
            eprintln!(
                "[drift] probe user still misclassified after {} requests",
                i + 1
            );
        }
    }
    let post_swap = server
        .infer(ServeRequest::new(probe_user.clone(), probe_x.clone()))
        .expect("probe serve")
        .output;
    let resolved = shared
        .plan_for(&probe_user, Variant::Basic, Precision::F32)
        .expect("resolved plan")
        .forward(&probe_x)
        .expect("forward");
    let staleness_ok = post_swap.as_slice() == resolved.as_slice()
        && (!probe_live || pre_swap.as_slice() != post_swap.as_slice());

    let sstats = server.shutdown();
    let cstats = shared.stats();

    // early = a fixed window right after the shift (the stale regime is
    // short-lived by design, so a proportional window would dilute it at
    // longer run lengths); late = the last quarter
    let quarter = (stats_b.live.len() / 4).max(1);
    let early_n = quarter.min(1_024);
    let early_live = live_rate(&stats_b.live[..early_n]);
    let late_live = live_rate(&stats_b.live[stats_b.live.len() - quarter..]);
    let row_a = phase_row(&stats_a);
    let row_b = phase_row(&stats_b);
    eprintln!(
        "[drift] phase A: p99 {:>8.1} µs  acc {:>6.2}%   phase B: p99 {:>8.1} µs  acc \
         {:>6.2}% → {:>6.2}%",
        row_a.p99_us,
        row_a.live_rate * 100.0,
        row_b.p99_us,
        early_live * 100.0,
        late_live * 100.0,
    );
    eprintln!(
        "[drift] swaps {} (noop {}, failed {}), first swap {:?} ms after shift, released {}, \
         evictions {}",
        sstats.swaps,
        sstats.swap_noops,
        sstats.swap_failed,
        first_swap.map(|ms| ms.round()),
        cstats.released,
        cstats.evictions,
    );

    let report = Report {
        host_cores,
        smoke,
        num_profiles: NUM_PROFILES,
        classes: CLASSES,
        wave: WAVE,
        label_shift: LABEL_SHIFT,
        budget_bytes: budget,
        phase_a: row_a,
        phase_b: row_b,
        early_live_rate: early_live,
        late_live_rate: late_live,
        time_to_first_swap_ms: first_swap,
        swaps: sstats.swaps,
        swap_noops: sstats.swap_noops,
        swap_failed: sstats.swap_failed,
        failed: stats_a.failed + stats_b.failed,
        rejected: sstats.rejected,
        cache_released: cstats.released,
        cache_evictions: cstats.evictions,
        staleness_probe_bitwise: staleness_ok,
        probe_top1_recovered: probe_live,
    };
    if let Some(path) = write_results_json("BENCH_drift", &report) {
        eprintln!("[drift] results written to {}", path.display());
    }

    // gates — enforced in smoke and full mode alike
    let p99_ceiling = (3.0 * report.phase_a.p99_us).max(5_000.0);
    let mut failed_gates = Vec::new();
    if report.swaps == 0 {
        failed_gates.push("no hot-swap happened".to_string());
    }
    if report.swap_failed > 0 {
        failed_gates.push(format!("{} failed swaps", report.swap_failed));
    }
    if report.failed > 0 || report.rejected > 0 {
        failed_gates.push(format!(
            "{} failed / {} rejected responses",
            report.failed, report.rejected
        ));
    }
    if phase_a_swaps > 0 {
        failed_gates.push(format!("{phase_a_swaps} swaps before any drift"));
    }
    if !report.probe_top1_recovered {
        failed_gates.push("probe user's shifted input never classified correctly".to_string());
    }
    if !report.staleness_probe_bitwise {
        failed_gates.push("post-swap response not bitwise the resolved plan".to_string());
    }
    if report.late_live_rate < 0.7 || report.late_live_rate - report.early_live_rate < 0.4 {
        failed_gates.push(format!(
            "top-1 accuracy did not recover: {:.2} → {:.2}",
            report.early_live_rate, report.late_live_rate
        ));
    }
    if report.phase_b.p99_us > p99_ceiling {
        failed_gates.push(format!(
            "phase B p99 {:.0} µs > ceiling {:.0} µs",
            report.phase_b.p99_us, p99_ceiling
        ));
    }
    if failed_gates.is_empty() {
        eprintln!("[drift] all gates passed");
    } else {
        for g in &failed_gates {
            eprintln!("[drift] gate FAILED: {g}");
        }
        std::process::exit(1);
    }
}
