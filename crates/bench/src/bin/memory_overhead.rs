//! §V-C memory-overhead accounting: the cost of storing CAP'NN-W/M's
//! per-class firing rates (3-bit quantized) relative to the 16-bit model,
//! and CAP'NN-B's binary pruning matrices for comparison.
//!
//! The paper reports 3.6 MB of firing rates vs 276 MB of VGG-16 weights
//! (≈1.3 %); the same ratio-level accounting is reproduced on the substrate
//! model.

use capnn_bench::experiments::VariantRunner;
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_profile::quantize_rates;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct OverheadReport {
    model_bytes_16bit: u64,
    rates_bytes_3bit: u64,
    rates_bytes_32bit: u64,
    basic_matrix_bytes: u64,
    overhead_pct_3bit: f64,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[memory] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let runner = VariantRunner::new(&rig);

    let model_bytes = rig.net.param_count() as u64 * 2; // 16-bit weights
    let q3 = quantize_rates(&rig.rates, 3);
    let report = OverheadReport {
        model_bytes_16bit: model_bytes,
        rates_bytes_3bit: q3.memory_bytes(),
        rates_bytes_32bit: rig.rates.memory_bytes(32),
        basic_matrix_bytes: runner.matrices().memory_bytes(),
        overhead_pct_3bit: 100.0 * q3.memory_bytes() as f64 / model_bytes as f64,
    };

    let mut table = Table::new(vec!["Artifact".into(), "Bytes".into(), "% of model".into()]);
    let pct = |b: u64| format!("{:.2}%", 100.0 * b as f64 / model_bytes as f64);
    table.row(vec![
        "model (16-bit weights)".into(),
        report.model_bytes_16bit.to_string(),
        "100%".into(),
    ]);
    table.row(vec![
        "firing rates (3-bit, CAP'NN-W/M)".into(),
        report.rates_bytes_3bit.to_string(),
        pct(report.rates_bytes_3bit),
    ]);
    table.row(vec![
        "firing rates (f32, unquantized)".into(),
        report.rates_bytes_32bit.to_string(),
        pct(report.rates_bytes_32bit),
    ]);
    table.row(vec![
        "pruning matrices (1-bit, CAP'NN-B)".into(),
        report.basic_matrix_bytes.to_string(),
        pct(report.basic_matrix_bytes),
    ]);
    println!("\n§V-C — cloud-side storage overhead of class-aware pruning state");
    println!("{table}");
    println!(
        "3-bit quantization keeps the overhead at {:.2}% of the model (paper: ≈1.3% on VGG-16).",
        report.overhead_pct_3bit
    );

    if let Some(path) = write_results_json("memory_overhead", &report) {
        eprintln!("[memory] results written to {}", path.display());
    }
}
