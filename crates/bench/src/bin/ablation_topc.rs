//! Ablation: how many confusing classes CAP'NN-M considers per user class
//! (footnote 4 of the paper ties the choice of 5 to top-5 accuracy).
//! More confusers → more units classified miseffectual → more pruning, but
//! past a point the "confusers" are noise classes and the ε check starts
//! rejecting candidates.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnM, PruningConfig, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TopcRow {
    top_confusing: usize,
    miseffectual_total: usize,
    relative_size: f64,
    top1: f32,
    baseline_top1: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_topc] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let mut rng = XorShiftRng::new(0xAB1A7E);
    let classes = rng.sample_combination(rig.scale.classes, 2);
    let profile = UserProfile::new(classes, vec![0.8, 0.2]).expect("profile");
    let baseline_top1 = rig
        .eval
        .topk_accuracy(&PruneMask::all_kept(&rig.net), 1, Some(profile.classes()))
        .expect("baseline");

    let mut table = Table::new(vec![
        "top confusing".into(),
        "miseffectual units".into(),
        "rel. size".into(),
        "top-1".into(),
    ]);
    let mut rows = Vec::new();
    for topc in [1usize, 3, 5, 8] {
        let mut config = PruningConfig::paper();
        config.top_confusing = topc;
        let m = CapnnM::new(config).expect("valid");
        let sets = m.miseffectual_sets(&rig.net, &rig.confusion).expect("sets");
        let mask = m
            .prune(&rig.net, &rig.rates, &rig.confusion, &rig.eval, &profile)
            .expect("prune");
        let row = TopcRow {
            top_confusing: topc,
            miseffectual_total: sets.iter().map(Vec::len).sum(),
            relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                / original as f64,
            top1: rig
                .eval
                .topk_accuracy(&mask, 1, Some(profile.classes()))
                .expect("top1"),
            baseline_top1,
        };
        table.row(vec![
            topc.to_string(),
            row.miseffectual_total.to_string(),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.top1 * 100.0),
        ]);
        rows.push(row);
    }
    println!("\nAblation — confusing-class count in CAP'NN-M (fixed 2-class profile)");
    println!(
        "baseline top-1 over user classes: {:.1}%",
        baseline_top1 * 100.0
    );
    println!("{table}");

    if let Some(path) = write_results_json("ablation_topc", &rows) {
        eprintln!("[ablation_topc] results written to {}", path.display());
    }
}
