//! Ablation: profiling-set size. The paper computes firing rates from 200
//! ImageNet images per class (§V); this sweep measures how the number of
//! profiling samples per class changes the firing-rate estimates and the
//! pruning decisions built on them — the ε guarantee holds regardless, since
//! the accuracy check runs on the evaluation set, not the profile.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnW, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_profile::FiringRateProfiler;
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ProfileSamplesRow {
    samples_per_class: usize,
    rate_rmse_vs_reference: f64,
    relative_size: f64,
    max_degradation: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_profile] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
        .expect("size")
        .total();
    let mut rng = XorShiftRng::new(0xAB1A7E);
    let classes = rng.sample_combination(rig.scale.classes, 3);
    let profile = UserProfile::new(classes, vec![0.6, 0.3, 0.1]).expect("profile");
    let w = CapnnW::new(rig.config).expect("valid");

    // Reference rates: the largest profiling set in the sweep.
    let sweep = [2usize, 4, 8, 16, 32];
    let reference_ds = rig.images.generate(*sweep.last().unwrap(), 0xFEED);
    let reference = FiringRateProfiler::new(rig.config.tail_layers)
        .profile(&rig.net, &reference_ds)
        .expect("reference profile");

    let mut table = Table::new(vec![
        "samples/class".into(),
        "rate RMSE vs ref".into(),
        "rel. size".into(),
        "max degr.".into(),
    ]);
    let mut rows = Vec::new();
    for &n in &sweep {
        let ds = rig.images.generate(n, 0xFEED);
        let rates = FiringRateProfiler::new(rig.config.tail_layers)
            .profile(&rig.net, &ds)
            .expect("profile");
        // RMSE between this profile's rates and the reference
        let mut se = 0.0f64;
        let mut count = 0usize;
        for (a, b) in rates.layers().iter().zip(reference.layers()) {
            for (&x, &y) in a.rates.as_slice().iter().zip(b.rates.as_slice()) {
                se += f64::from(x - y) * f64::from(x - y);
                count += 1;
            }
        }
        let rmse = (se / count.max(1) as f64).sqrt();
        let mask = w
            .prune(&rig.net, &rates, &rig.eval, &profile)
            .expect("prune");
        let degr = rig
            .eval
            .max_degradation(&mask, Some(profile.classes()))
            .expect("degradation");
        assert!(
            degr <= rig.config.epsilon + 1e-4,
            "ε violated with {n} profiling samples"
        );
        let row = ProfileSamplesRow {
            samples_per_class: n,
            rate_rmse_vs_reference: rmse,
            relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                / original as f64,
            max_degradation: degr,
        };
        table.row(vec![
            n.to_string(),
            format!("{:.4}", row.rate_rmse_vs_reference),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.max_degradation * 100.0),
        ]);
        rows.push(row);
    }
    println!("\nAblation — profiling-set size (CAP'NN-W, fixed 3-class profile)");
    println!("{table}");
    println!("ε guarantee held at every profiling size (accuracy is checked on the eval set).");

    if let Some(path) = write_results_json("ablation_profile_samples", &rows) {
        eprintln!("[ablation_profile] results written to {}", path.display());
    }
}
