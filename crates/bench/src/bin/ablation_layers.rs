//! Ablation: how many trailing layers to prune (`l_start`, footnote 3 of
//! the paper). Early layers extract generic features, so pruning deeper into
//! the network risks accuracy for less class-specific gain; pruning too few
//! layers leaves model-size savings on the table.

use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::{CapnnW, PruningConfig, UserProfile};
use capnn_nn::{model_size, PruneMask};
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct LayersRow {
    tail_layers: usize,
    prunable_units_in_scope: usize,
    relative_size: f64,
    max_degradation: f32,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_layers] building rigs (one per tail depth)…");
    let mut table = Table::new(vec![
        "tail layers".into(),
        "units in scope".into(),
        "rel. size".into(),
        "max degr.".into(),
    ]);
    let mut rows = Vec::new();
    for tail in [2usize, 4, 6, 8] {
        let mut config = PruningConfig::paper();
        config.tail_layers = tail;
        // each tail depth needs its own profiler/evaluator scope
        let rig = PaperRig::build_with_config(scale, config);
        let original = model_size(&rig.net, &PruneMask::all_kept(&rig.net))
            .expect("size")
            .total();
        let mut rng = XorShiftRng::new(0xAB1A7E);
        let classes = rng.sample_combination(rig.scale.classes, 3);
        let profile = UserProfile::new(classes, vec![0.6, 0.3, 0.1]).expect("profile");
        let w = CapnnW::new(config).expect("valid");
        let mask = w
            .prune(&rig.net, &rig.rates, &rig.eval, &profile)
            .expect("prune");
        let units_in_scope: usize = {
            let mut t = rig.net.prunable_tail(tail);
            if t.last() == rig.net.prunable_layers().last() {
                t.pop();
            }
            t.iter()
                .map(|&li| rig.net.layers()[li].unit_count().unwrap_or(0))
                .sum()
        };
        let row = LayersRow {
            tail_layers: tail,
            prunable_units_in_scope: units_in_scope,
            relative_size: model_size(&rig.net, &mask).expect("size").total() as f64
                / original as f64,
            max_degradation: rig
                .eval
                .max_degradation(&mask, Some(profile.classes()))
                .expect("degradation"),
        };
        table.row(vec![
            tail.to_string(),
            row.prunable_units_in_scope.to_string(),
            format!("{:.3}", row.relative_size),
            format!("{:.1}%", row.max_degradation * 100.0),
        ]);
        eprintln!("[ablation_layers] tail = {tail} done");
        rows.push(row);
    }
    println!("\nAblation — prunable tail depth (CAP'NN-W, fixed profile)");
    println!("{table}");

    if let Some(path) = write_results_json("ablation_layers", &rows) {
        eprintln!("[ablation_layers] results written to {}", path.display());
    }
}
