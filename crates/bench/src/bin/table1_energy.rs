//! Table I: component energies of the accelerator model and the relative
//! energy consumption of the CAP'NN-M-pruned network for K ∈ {2, 3, 4, 5,
//! 10} user classes, averaged over usage distributions and random class
//! combinations.

use capnn_bench::experiments::{distributions_for_k, EnergyRig, VariantRunner};
use capnn_bench::{write_results_json, PaperRig, Scale, Table};
use capnn_core::UserProfile;
use capnn_nn::PruneMask;
use capnn_tensor::XorShiftRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct EnergyRow {
    k: usize,
    relative_energy: f64,
    relative_dram: f64,
    relative_macs: f64,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table1] building rig ({:?})…", scale);
    let rig = PaperRig::build(scale);
    let runner = VariantRunner::new(&rig);
    let energy_rig = EnergyRig::new();
    let baseline = energy_rig.energy(&rig.net, &PruneMask::all_kept(&rig.net));

    // Left half of Table I: the component energies in force.
    let m = &energy_rig.model;
    let mut components = Table::new(vec!["Component".into(), "Energy (pJ)".into()]);
    components.row(vec!["16-bit adder".into(), format!("{}", m.adder_pj)]);
    components.row(vec![
        "16-bit multiplier".into(),
        format!("{}", m.multiplier_pj),
    ]);
    components.row(vec![
        "Max Pool / ReLU".into(),
        format!("{} / {}", m.max_pool_pj, m.relu_pj),
    ]);
    components.row(vec!["SRAM".into(), format!("{}", m.sram_pj)]);
    components.row(vec!["DRAM".into(), format!("{}", m.dram_pj)]);
    println!("\nTable I (left) — component energies:");
    println!("{components}");

    let mut table = Table::new(vec!["Number of classes".into(), "Relative energy".into()]);
    let mut rows = Vec::new();
    let mut rng = XorShiftRng::new(0x7AB1E1);
    let ks: Vec<usize> = [2usize, 3, 4, 5, 10]
        .into_iter()
        .filter(|&k| k < rig.scale.classes)
        .collect();
    for &k in &ks {
        let mut rel_sum = 0.0f64;
        let mut dram_sum = 0.0f64;
        let mut mac_sum = 0.0f64;
        let mut cells = 0usize;
        for _ in 0..scale.combos_per_k.max(1) {
            let classes = rng.sample_combination(rig.scale.classes, k);
            for dist in distributions_for_k(k) {
                let profile =
                    UserProfile::with_distribution(classes.clone(), &dist).expect("profile");
                let mask = runner.mask_for(&profile, capnn_core::Variant::Miseffectual);
                let e = energy_rig.energy(&rig.net, &mask);
                rel_sum += e.relative_to(&baseline);
                dram_sum += e.dram_pj / baseline.dram_pj.max(1e-12);
                mac_sum += e.mac_pj / baseline.mac_pj.max(1e-12);
                cells += 1;
            }
        }
        let n = cells.max(1) as f64;
        let row = EnergyRow {
            k,
            relative_energy: rel_sum / n,
            relative_dram: dram_sum / n,
            relative_macs: mac_sum / n,
        };
        table.row(vec![k.to_string(), format!("{:.2}", row.relative_energy)]);
        eprintln!(
            "[table1] K = {k}: relative energy {:.2} (DRAM {:.2}, MAC {:.2})",
            row.relative_energy, row.relative_dram, row.relative_macs
        );
        rows.push(row);
    }
    println!("Table I (right) — relative energy of VGG-mini pruned with CAP'NN-M:");
    println!("{table}");
    println!(
        "original inference energy: {:.1} µJ (MAC {:.1}%, SRAM {:.1}%, DRAM {:.1}%)",
        baseline.total_pj() / 1e6,
        100.0 * baseline.mac_pj / baseline.total_pj(),
        100.0 * baseline.sram_pj / baseline.total_pj(),
        100.0 * baseline.dram_pj / baseline.total_pj(),
    );

    if let Some(path) = write_results_json("table1_energy", &rows) {
        eprintln!("[table1] results written to {}", path.display());
    }
}
