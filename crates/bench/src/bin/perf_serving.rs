//! Batched serving throughput of compiled execution plans.
//!
//! The serving scenario: one personalized mask, compiled once, answering a
//! stream of requests. This bin sweeps batch size over the plan's
//! `forward_batch` path on two models — the CNN used by the inference
//! bench, and a wide serving MLP where weight traffic dominates and batch
//! amortization pays the most — and records per-sample latency relative to
//! the single-sample compiled path (batch = 1).
//!
//! Emits `results/BENCH_serving.json`. Also asserts that batched outputs
//! are argmax-bit-compatible with `forward_masked_reference`, and records
//! whether batch=32 meets the ≥ 2x-over-batch-1 throughput target.

use capnn_bench::{write_results_json, write_results_raw};
use capnn_core::{
    CapnnError, CloudServer, DriftPolicy, FleetPlanCache, InferenceServer, LocalDevice, ModelCache,
    PersonalizationRequest, PersonalizationSession, PruningConfig, ServeRequest, ServerConfig,
    UserProfile, Variant,
};
use capnn_data::{SyntheticImages, SyntheticImagesConfig, VectorClusters, VectorClustersConfig};
use capnn_nn::{
    Network, NetworkBuilder, PlanScratch, Precision, PruneMask, Trainer, TrainerConfig, VggConfig,
};
use capnn_tensor::{parallel, Tensor, XorShiftRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `CAPNN_BENCH_SMOKE=1` runs a tiny sweep (CI: exercise the bin end to
/// end, including the bit-compatibility checks), skips writing `results/`,
/// and gates on the vgg batch-32 scaling (see `smoke_gate`).
fn smoke_mode() -> bool {
    std::env::var("CAPNN_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The batch sizes to sweep: `CAPNN_BENCH_BATCHES` (comma-separated, e.g.
/// `1,3,8,24`) overrides the defaults, so the adaptive controller's knee
/// can be cross-checked against arbitrary fixed sweeps. Unparsable or zero
/// entries abort — a silently dropped batch point would skew the report.
/// Without the override, smoke mode sweeps `[1,4,32]` (the gate checks
/// batch-32 scaling) and full mode `[1,2,4,8,16,32]`.
fn batch_list(smoke: bool) -> Vec<usize> {
    if let Ok(raw) = std::env::var("CAPNN_BENCH_BATCHES") {
        let mut batches: Vec<usize> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| match s.parse::<usize>() {
                Ok(b) if b > 0 => b,
                _ => {
                    eprintln!("[serving] CAPNN_BENCH_BATCHES: bad batch size {s:?} in {raw:?}");
                    std::process::exit(2);
                }
            })
            .collect();
        batches.sort_unstable();
        batches.dedup();
        if batches.is_empty() {
            eprintln!("[serving] CAPNN_BENCH_BATCHES is set but empty: {raw:?}");
            std::process::exit(2);
        }
        eprintln!("[serving] batch list overridden: {batches:?}");
        return batches;
    }
    if smoke {
        vec![1, 4, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    }
}

/// Smoke-mode CI gate: on multi-core hosts the conv path must hold a
/// batch-32 `speedup_vs_batch1` of at least 1.8× on the vgg model — the
/// regression guard for the panel-packed conv engine. Single-core runners
/// cannot express batch parallelism at all, so they skip with a logged
/// notice instead of failing. Returns `true` when the gate fails.
fn smoke_gate(models: &[ModelSummary], host_cores: usize) -> bool {
    const MIN_SPEEDUP: f64 = 1.8;
    let Some(vgg) = models.iter().find(|m| m.model.starts_with("vgg_tiny")) else {
        eprintln!("[serving] smoke gate: no vgg model in sweep, nothing to check");
        return false;
    };
    if host_cores <= 1 {
        eprintln!(
            "[serving] smoke gate SKIPPED: single-core host cannot express batch-32 \
             scaling ({} measured {:.2}x)",
            vgg.model, vgg.batch32_speedup
        );
        return false;
    }
    if vgg.batch32_speedup < MIN_SPEEDUP {
        eprintln!(
            "[serving] smoke gate FAILED: {} batch-32 speedup {:.2}x < {MIN_SPEEDUP}x",
            vgg.model, vgg.batch32_speedup
        );
        return true;
    }
    eprintln!(
        "[serving] smoke gate: {} batch-32 speedup {:.2}x ≥ {MIN_SPEEDUP}x",
        vgg.model, vgg.batch32_speedup
    );
    false
}

#[derive(Debug, Serialize)]
struct BatchRow {
    model: String,
    batch: usize,
    iters: usize,
    total_s: f64,
    per_sample_us: f64,
    throughput_sps: f64,
    /// Throughput relative to the batch=1 compiled path of the same model.
    speedup_vs_batch1: f64,
}

#[derive(Debug, Serialize)]
struct ModelSummary {
    model: String,
    prune_ratio: f64,
    per_sample_macs: u64,
    packed_params: usize,
    batch1_per_sample_us: f64,
    batch32_per_sample_us: f64,
    batch32_speedup: f64,
    meets_2x_target: bool,
    argmax_bit_compatible: bool,
    argmax_samples_checked: usize,
}

#[derive(Debug, Serialize)]
struct Int8Summary {
    model: String,
    prune_ratio: f64,
    batch1_per_sample_us: f64,
    batch32_per_sample_us: f64,
    /// Batch-32 throughput of the int8 plan over the f32 plan of the same
    /// model and mask.
    speedup_vs_f32_batch32: f64,
    /// The full-run acceptance target for the weight-bound serving MLP.
    meets_1_5x_target: bool,
    /// Top-1 agreement with the f32 plan on the checked samples (the
    /// statistically meaningful ≥ 99 % gate over 128 samples lives in
    /// `perf_speedup`; this is a serving-path spot check).
    argmax_agreement_vs_f32: f64,
    argmax_samples_checked: usize,
}

#[derive(Debug, Serialize)]
struct TelemetryOverhead {
    model: String,
    batch: usize,
    disabled_per_sample_us: f64,
    enabled_per_sample_us: f64,
    /// Enabled-mode slowdown in percent; the probe budget is ≤ 2 %.
    overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    host_cores: usize,
    default_threads: usize,
    batches: Vec<usize>,
    rows: Vec<BatchRow>,
    models: Vec<ModelSummary>,
    int8: Vec<Int8Summary>,
    telemetry_overhead: Option<TelemetryOverhead>,
}

fn has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Smoke-mode CI gate for the quantized path: on AVX2 hosts the int8
/// serving-MLP plan must beat its f32 twin by at least 1.3× at batch 32
/// (the full-run target is 1.5×; smoke iteration counts are too small to
/// hold the full bar). Non-AVX2 hosts run int8 through the scalar
/// reference kernel, where no speedup is promised, so they skip with a
/// logged notice. Returns `true` when the gate fails.
fn int8_smoke_gate(int8: &[Int8Summary]) -> bool {
    const MIN_SPEEDUP: f64 = 1.3;
    let Some(mlp) = int8.iter().find(|m| m.model.starts_with("serving_mlp")) else {
        eprintln!("[serving] int8 smoke gate: no serving_mlp int8 sweep, nothing to check");
        return false;
    };
    if !has_avx2() {
        eprintln!(
            "[serving] int8 smoke gate SKIPPED: no AVX2, int8 runs the scalar reference \
             kernel ({} measured {:.2}x vs f32)",
            mlp.model, mlp.speedup_vs_f32_batch32
        );
        return false;
    }
    if mlp.speedup_vs_f32_batch32 < MIN_SPEEDUP {
        eprintln!(
            "[serving] int8 smoke gate FAILED: {} batch-32 int8 speedup {:.2}x < {MIN_SPEEDUP}x vs f32",
            mlp.model, mlp.speedup_vs_f32_batch32
        );
        return true;
    }
    eprintln!(
        "[serving] int8 smoke gate: {} batch-32 int8 speedup {:.2}x ≥ {MIN_SPEEDUP}x vs f32",
        mlp.model, mlp.speedup_vs_f32_batch32
    );
    false
}

/// Prunes `ratio` of the units of every hidden prunable layer.
fn ratio_mask(net: &Network, ratio: f64) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let pruned = ((units as f64) * ratio) as usize;
        let flags: Vec<bool> = (0..units).map(|u| u >= pruned).collect();
        mask.set_layer(li, flags).expect("mask fits");
    }
    mask
}

/// Sweeps `forward_batch` over `batches` for one model, appending rows and
/// a summary. `inputs` must hold at least `max(batches)` samples.
#[allow(clippy::too_many_arguments)]
fn sweep_model(
    name: &str,
    net: &Network,
    ratio: f64,
    inputs: &[Tensor],
    batches: &[usize],
    samples_per_point: usize,
    rows: &mut Vec<BatchRow>,
    models: &mut Vec<ModelSummary>,
) {
    let mask = ratio_mask(net, ratio);
    let plan = net.compile(&mask).expect("compiles");

    // argmax bit-compatibility of the batched path vs the reference engine
    let check = inputs.len().min(8);
    let batched = plan.forward_batch(&inputs[..check]).expect("batch");
    let mut compatible = true;
    for (x, out) in inputs[..check].iter().zip(&batched) {
        let reference = net
            .forward_masked_reference_from(0, x, &mask)
            .expect("reference");
        if out.argmax() != reference.argmax() {
            compatible = false;
            eprintln!("[serving] ARGMAX MISMATCH ({name})");
        }
    }

    let mut scratch = PlanScratch::new();
    let mut batch1_per = 0.0;
    let mut batch1_us = 0.0;
    let mut batch32_us = 0.0;
    let mut batch32_speedup = 0.0;
    for &batch in batches {
        let iters = (samples_per_point / batch).max(2);
        let chunk = &inputs[..batch];
        // warmup: size the scratch buffers for this batch
        std::hint::black_box(
            plan.forward_batch_with_scratch(chunk, &mut scratch)
                .expect("warmup"),
        );
        // best-of-5: the minimum repetition is the least contended
        let mut total_s = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(
                    plan.forward_batch_with_scratch(chunk, &mut scratch)
                        .expect("batch"),
                );
            }
            total_s = total_s.min(t0.elapsed().as_secs_f64());
        }
        let per = total_s / (iters * batch) as f64;
        if batch == 1 {
            batch1_per = per;
            batch1_us = per * 1e6;
        }
        let speedup = if per > 0.0 && batch1_per > 0.0 {
            batch1_per / per
        } else {
            1.0
        };
        if batch == 32 {
            batch32_us = per * 1e6;
            batch32_speedup = speedup;
        }
        rows.push(BatchRow {
            model: name.into(),
            batch,
            iters,
            total_s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_batch1: speedup,
        });
        eprintln!(
            "[serving] {name:<14} batch={batch:<3} {:>9.1} µs/sample  {:>5.2}x vs batch=1",
            per * 1e6,
            speedup
        );
    }
    models.push(ModelSummary {
        model: name.into(),
        prune_ratio: ratio,
        per_sample_macs: plan.per_sample_macs(),
        packed_params: plan.packed_param_count(),
        batch1_per_sample_us: batch1_us,
        batch32_per_sample_us: batch32_us,
        batch32_speedup,
        meets_2x_target: batch32_speedup >= 2.0,
        argmax_bit_compatible: compatible,
        argmax_samples_checked: check,
    });
}

/// Sweeps the int8-compiled plan of `name` over `batches`, appending
/// `{name}_int8` rows and an [`Int8Summary`] comparing the batch-32
/// per-sample latency against the f32 plan of the same mask (whose sweep
/// must already be in `models`).
#[allow(clippy::too_many_arguments)]
fn sweep_int8(
    name: &str,
    net: &Network,
    ratio: f64,
    inputs: &[Tensor],
    batches: &[usize],
    samples_per_point: usize,
    rows: &mut Vec<BatchRow>,
    models: &[ModelSummary],
    int8: &mut Vec<Int8Summary>,
) {
    let mask = ratio_mask(net, ratio);
    let f32_plan = net.compile(&mask).expect("compiles f32");
    let plan = net
        .compile_with_precision(&mask, Precision::Int8)
        .expect("compiles int8");
    let int8_name = format!("{name}_int8");

    // top-1 agreement with the f32 plan on a handful of serving inputs
    let check = inputs.len().min(8);
    let quantized = plan.forward_batch(&inputs[..check]).expect("int8 batch");
    let baseline = f32_plan.forward_batch(&inputs[..check]).expect("f32 batch");
    let agree = quantized
        .iter()
        .zip(&baseline)
        .filter(|(q, f)| q.argmax() == f.argmax())
        .count();

    let mut scratch = PlanScratch::new();
    let mut batch1_per = 0.0;
    let mut batch1_us = 0.0;
    let mut batch32_us = 0.0;
    for &batch in batches {
        let iters = (samples_per_point / batch).max(2);
        let chunk = &inputs[..batch];
        std::hint::black_box(
            plan.forward_batch_with_scratch(chunk, &mut scratch)
                .expect("warmup"),
        );
        let mut total_s = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(
                    plan.forward_batch_with_scratch(chunk, &mut scratch)
                        .expect("batch"),
                );
            }
            total_s = total_s.min(t0.elapsed().as_secs_f64());
        }
        let per = total_s / (iters * batch) as f64;
        if batch == 1 {
            batch1_per = per;
            batch1_us = per * 1e6;
        }
        let speedup = if per > 0.0 && batch1_per > 0.0 {
            batch1_per / per
        } else {
            1.0
        };
        if batch == 32 {
            batch32_us = per * 1e6;
        }
        rows.push(BatchRow {
            model: int8_name.clone(),
            batch,
            iters,
            total_s,
            per_sample_us: per * 1e6,
            throughput_sps: 1.0 / per,
            speedup_vs_batch1: speedup,
        });
        eprintln!(
            "[serving] {int8_name:<14} batch={batch:<3} {:>9.1} µs/sample  {:>5.2}x vs batch=1",
            per * 1e6,
            speedup
        );
    }
    let f32_batch32_us = models
        .iter()
        .find(|m| m.model == name)
        .map(|m| m.batch32_per_sample_us)
        .unwrap_or(0.0);
    let speedup_vs_f32 = if batch32_us > 0.0 && f32_batch32_us > 0.0 {
        f32_batch32_us / batch32_us
    } else {
        1.0
    };
    int8.push(Int8Summary {
        model: int8_name,
        prune_ratio: ratio,
        batch1_per_sample_us: batch1_us,
        batch32_per_sample_us: batch32_us,
        speedup_vs_f32_batch32: speedup_vs_f32,
        meets_1_5x_target: speedup_vs_f32 >= 1.5,
        argmax_agreement_vs_f32: agree as f64 / check as f64,
        argmax_samples_checked: check,
    });
}

/// Times the serving-MLP compiled batch path with telemetry forced off and
/// on, measuring the cost of the per-step probes against the ≤ 2 % budget.
/// Restores the prior toggle state before returning.
fn measure_telemetry_overhead(
    net: &Network,
    inputs: &[Tensor],
    samples_per_point: usize,
) -> TelemetryOverhead {
    let batch = inputs.len().min(32);
    let mask = ratio_mask(net, 0.5);
    let plan = net.compile(&mask).expect("compiles");
    let mut scratch = PlanScratch::new();
    let iters = (samples_per_point / batch).max(2);
    let prior = capnn_telemetry::enabled();
    let chunk = &inputs[..batch];
    let mut time_once = |on: bool| {
        capnn_telemetry::set_enabled(on);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(
                plan.forward_batch_with_scratch(chunk, &mut scratch)
                    .expect("batch"),
            );
        }
        t0.elapsed().as_secs_f64()
    };
    // warm both modes, then interleave the timed repetitions so slow
    // clock-frequency drift hits both modes equally; keep the best of each.
    time_once(false);
    time_once(true);
    let (mut disabled, mut enabled) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        disabled = disabled.min(time_once(false));
        enabled = enabled.min(time_once(true));
    }
    capnn_telemetry::set_enabled(prior);
    let disabled = disabled / (iters * batch) as f64;
    let enabled = enabled / (iters * batch) as f64;
    TelemetryOverhead {
        model: "serving_mlp".into(),
        batch,
        disabled_per_sample_us: disabled * 1e6,
        enabled_per_sample_us: enabled * 1e6,
        overhead_pct: (enabled / disabled - 1.0) * 100.0,
    }
}

/// A miniature end-to-end serving pass — cloud personalization through the
/// request builder, fleet cache hits and misses, device inference and a
/// drift check — so an enabled-telemetry run snapshots the full probe map,
/// not just kernel timings.
fn serving_scenario() {
    let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).expect("gen");
    let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 8,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, gen.generate(20, 1).samples())
        .expect("training");
    let mut cloud = CloudServer::new(
        net,
        &gen.generate(15, 2),
        &gen.generate(10, 3),
        PruningConfig::fast(),
    )
    .expect("cloud");

    // fleet cache: two equivalent users share one model (1 hit, 2 misses)
    let mut cache = ModelCache::new(16).expect("cache");
    let users = [
        UserProfile::new(vec![0, 1], vec![0.7, 0.3]).expect("profile"),
        UserProfile::new(vec![1, 0], vec![0.3, 0.7]).expect("profile"),
        UserProfile::new(vec![2, 3], vec![0.5, 0.5]).expect("profile"),
    ];
    for user in &users {
        cache
            .personalize(&mut cloud, user, Variant::Weighted)
            .expect("personalize");
    }

    // fleet plan cache under a deliberately tight byte budget — roomy enough
    // to keep either precision's plan resident alone, too small for the
    // f32 + int8 pair the alternating requests below demand — so the
    // cache.resident_bytes and cache.evictions gauges both land nonzero
    // alongside the hit/miss counters (the full Zipfian treatment lives in
    // `perf_cache`)
    let mask = cloud
        .prune_mask(&users[0], Variant::Basic)
        .expect("probe mask");
    let probe = |precision| {
        cloud
            .compile_pooled(&mask, precision)
            .expect("probe plan")
            .resident_bytes() as u64
    };
    let pair_bytes = probe(Precision::F32) + probe(Precision::Int8);
    let mut fleet = FleetPlanCache::with_budget(16, Some(pair_bytes - 1)).expect("fleet cache");
    for (i, user) in users.iter().cycle().take(2 * users.len()).enumerate() {
        let precision = if i % 2 == 0 {
            Precision::F32
        } else {
            Precision::Int8
        };
        fleet
            .plan_for(&mut cloud, user, Variant::Basic, precision)
            .expect("fleet plan");
    }

    // the unified request API, with telemetry opted in
    let req = PersonalizationRequest::builder(users[0].clone())
        .variant(Variant::Miseffectual)
        .telemetry(true)
        .build()
        .expect("request");
    let resp = cloud.handle(&req).expect("personalize");

    // device-side inference + drift monitoring
    let mut device = LocalDevice::deploy_personalized(&resp.model);
    let mut session =
        PersonalizationSession::new(resp.model.profile.clone(), DriftPolicy::conservative())
            .expect("session");
    for (x, _) in gen.generate(6, 5).samples() {
        let pred = device.infer(x).expect("infer");
        session.record(pred);
    }
    let _ = session.check_drift();

    // serving front-end: a short burst through the batching server lands
    // the server.queue_depth / server.batch_size / server.dwell_ns probes
    let server = InferenceServer::start(
        cloud,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let shared = Arc::clone(server.cache());
    let mut rng = XorShiftRng::new(41);
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let user = users[i % users.len()].clone();
            let x = Tensor::uniform(&[6], -1.0, 1.0, &mut rng);
            server.submit(ServeRequest::new(user, x)).expect("submit")
        })
        .collect();
    for h in handles {
        h.wait().expect("response");
    }
    server.shutdown();

    // and a deterministic rejection for server.rejected: capacity 1 with a
    // batch target the lone queue can never fill before its (long) dwell
    let strict = InferenceServer::start_with_cache(
        shared,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            fixed_batch: Some(8),
            max_dwell: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("strict server");
    let x = Tensor::uniform(&[6], -1.0, 1.0, &mut rng);
    let admitted = strict
        .submit(ServeRequest::new(users[0].clone(), x.clone()))
        .expect("admit");
    for _ in 0..3 {
        let err = strict
            .submit(ServeRequest::new(users[0].clone(), x.clone()))
            .expect_err("over capacity");
        assert!(matches!(err, CapnnError::Overloaded(_)), "{err:?}");
    }
    strict.shutdown();
    admitted.wait().expect("drained at shutdown");
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let default_threads = parallel::max_threads();
    // smoke keeps batch 32 in the sweep: the smoke gate checks its scaling
    let batches = batch_list(smoke_mode());
    let samples_per_point = if smoke_mode() { 64 } else { 256 };
    let max_batch = *batches.iter().max().expect("non-empty");
    eprintln!("[serving] host cores: {host_cores}, pool threads: {default_threads}");

    let mut rows = Vec::new();
    let mut models = Vec::new();
    let mut int8 = Vec::new();
    let mut rng = XorShiftRng::new(17);

    // CNN: the model the inference bench tracks.
    let classes = 8;
    let images = SyntheticImages::new(SyntheticImagesConfig::small(classes)).expect("config");
    let cnn = NetworkBuilder::vgg(&VggConfig::vgg_tiny(classes), 7)
        .build()
        .expect("builds");
    let cnn_inputs: Vec<Tensor> = (0..max_batch.max(8))
        .map(|i| images.sample(i % classes, &mut rng))
        .collect();
    sweep_model(
        "vgg_tiny(8)",
        &cnn,
        0.5,
        &cnn_inputs,
        &batches,
        samples_per_point,
        &mut rows,
        &mut models,
    );

    // Wide MLP: dense weight streaming dominates, so batching each weight
    // row across samples is where the batched kernels earn their keep.
    let mlp = NetworkBuilder::mlp(&[768, 1536, 768, 384, 16], 23)
        .build()
        .expect("builds");
    let mlp_inputs: Vec<Tensor> = (0..max_batch.max(8))
        .map(|_| Tensor::uniform(&[768], -1.0, 1.0, &mut rng))
        .collect();
    sweep_model(
        "serving_mlp",
        &mlp,
        0.5,
        &mlp_inputs,
        &batches,
        samples_per_point,
        &mut rows,
        &mut models,
    );

    // int8 twins of both sweeps: same masks, quantized plans
    sweep_int8(
        "vgg_tiny(8)",
        &cnn,
        0.5,
        &cnn_inputs,
        &batches,
        samples_per_point,
        &mut rows,
        &models,
        &mut int8,
    );
    sweep_int8(
        "serving_mlp",
        &mlp,
        0.5,
        &mlp_inputs,
        &batches,
        samples_per_point,
        &mut rows,
        &models,
        &mut int8,
    );
    for m in &int8 {
        eprintln!(
            "[serving] {:<18} batch32 int8 {:>5.2}x vs f32 plan (target ≥ 1.5x: {}), \
             top-1 agreement {}/{}",
            m.model,
            m.speedup_vs_f32_batch32,
            if m.meets_1_5x_target { "met" } else { "MISSED" },
            (m.argmax_agreement_vs_f32 * m.argmax_samples_checked as f64).round() as usize,
            m.argmax_samples_checked
        );
    }

    let all_compatible = models.iter().all(|m| m.argmax_bit_compatible);
    for m in &models {
        eprintln!(
            "[serving] {:<14} batch32 {:>5.2}x vs batch1 (target ≥ 2x: {}), argmax {}",
            m.model,
            m.batch32_speedup,
            if m.meets_2x_target { "met" } else { "MISSED" },
            if m.argmax_bit_compatible {
                "OK"
            } else {
                "FAILED"
            }
        );
    }

    // --- telemetry probe overhead (disabled vs enabled, same path) --------
    let overhead = measure_telemetry_overhead(&mlp, &mlp_inputs, samples_per_point);
    eprintln!(
        "[serving] telemetry overhead ({} batch={}): {:.2} µs/sample off, {:.2} µs/sample on ({:+.2}%)",
        overhead.model,
        overhead.batch,
        overhead.disabled_per_sample_us,
        overhead.enabled_per_sample_us,
        overhead.overhead_pct
    );

    let report = Report {
        host_cores,
        default_threads,
        batches,
        rows,
        models,
        int8,
        telemetry_overhead: Some(overhead),
    };
    if smoke_mode() {
        eprintln!("[serving] smoke mode: skipping results/ write");
    } else if let Some(path) = write_results_json("BENCH_serving", &report) {
        eprintln!("[serving] results written to {}", path.display());
    }

    // --- telemetry snapshot (CAPNN_TELEMETRY=1 runs only) -----------------
    if capnn_telemetry::enabled() {
        serving_scenario();
        if let Some(snapshot) = capnn_telemetry::snapshot() {
            let json = snapshot.to_json();
            if smoke_mode() {
                eprintln!(
                    "[serving] telemetry snapshot: {} counters, {} gauges, {} histograms \
                     ({} bytes; smoke mode: not written)",
                    snapshot.counters.len(),
                    snapshot.gauges.len(),
                    snapshot.histograms.len(),
                    json.len()
                );
            } else if let Some(path) = write_results_raw("TELEMETRY_serving", &json) {
                eprintln!("[serving] telemetry snapshot written to {}", path.display());
            }
        }
    }
    // the gates read batch-32 fields; a CAPNN_BENCH_BATCHES override that
    // drops 32 leaves them zeroed, so they only run when 32 was swept
    let has_batch32 = report.batches.contains(&32);
    if smoke_mode() && !has_batch32 {
        eprintln!(
            "[serving] smoke gates SKIPPED: batch 32 not in sweep {:?}",
            report.batches
        );
    }
    let gate_failed = smoke_mode() && has_batch32 && smoke_gate(&report.models, host_cores);
    let int8_gate_failed = smoke_mode() && has_batch32 && int8_smoke_gate(&report.int8);
    if !all_compatible || gate_failed || int8_gate_failed {
        std::process::exit(1);
    }
}
