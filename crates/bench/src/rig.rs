//! The shared experiment rig: trained network + cloud-side profiles.

use capnn_core::{CloudServer, PruningConfig, TailEvaluator};
use capnn_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
use capnn_nn::{Network, NetworkBuilder, Trainer, TrainerConfig, VggConfig};
use capnn_profile::{ConfusionMatrix, FiringRateProfiler, FiringRates};
use std::path::PathBuf;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Total output classes in the trained model.
    pub classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Profiling samples per class (the paper uses 200 on ImageNet).
    pub profile_per_class: usize,
    /// Evaluation samples per class for the ε checks and accuracy reports.
    pub eval_per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Random class combinations averaged per `K` (the paper uses 200).
    pub combos_per_k: usize,
}

impl Scale {
    /// Fast default: small class count, a handful of combinations.
    pub fn small() -> Self {
        Self {
            classes: 12,
            train_per_class: 48,
            profile_per_class: 16,
            eval_per_class: 10,
            epochs: 14,
            combos_per_k: 3,
        }
    }

    /// Closer to the paper's scale (still laptop-feasible).
    pub fn full() -> Self {
        Self {
            classes: 24,
            train_per_class: 64,
            profile_per_class: 32,
            eval_per_class: 12,
            epochs: 16,
            combos_per_k: 20,
        }
    }

    /// Reads `CAPNN_SCALE` (`small`/`full`); unknown values fall back to
    /// `small`.
    pub fn from_env() -> Self {
        match std::env::var("CAPNN_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::small(),
        }
    }

    fn cache_key(&self) -> String {
        format!(
            "vggmini-c{}-t{}-e{}",
            self.classes, self.train_per_class, self.epochs
        )
    }
}

/// The full experiment rig.
#[derive(Debug)]
pub struct PaperRig {
    /// The synthetic "ImageNet" stand-in.
    pub images: SyntheticImages,
    /// The trained commodity model.
    pub net: Network,
    /// Cloud-side firing rates over the prunable tail.
    pub rates: FiringRates,
    /// Cloud-side confusion matrix.
    pub confusion: ConfusionMatrix,
    /// ε-checking evaluator (owns cached boundary activations).
    pub eval: TailEvaluator,
    /// The pruning configuration in force.
    pub config: PruningConfig,
    /// The scale the rig was built at.
    pub scale: Scale,
}

impl PaperRig {
    /// Builds (or loads from cache) the rig at the given scale with the
    /// paper's pruning configuration.
    ///
    /// # Panics
    ///
    /// Panics if the substrate fails to assemble — experiment binaries have
    /// no meaningful recovery path.
    pub fn build(scale: Scale) -> Self {
        Self::build_with_config(scale, PruningConfig::paper())
    }

    /// Builds the rig with a custom pruning configuration (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if the substrate fails to assemble.
    pub fn build_with_config(scale: Scale, config: PruningConfig) -> Self {
        let mut img_cfg = SyntheticImagesConfig::small(scale.classes);
        img_cfg.image_size = 32;
        img_cfg.class_contrast = 0.4;
        img_cfg.noise = 0.6;
        let images = SyntheticImages::new(img_cfg).expect("valid image config");
        let net = load_or_train(&images, scale);
        {
            // one-line health check so experiment logs show substrate quality
            let holdout = images.generate(scale.eval_per_class, 0x0D0E);
            let acc = capnn_nn::evaluate_accuracy(&net, holdout.samples()).expect("holdout eval");
            eprintln!(
                "[rig] substrate holdout top-1: {:.1}% over {} classes",
                acc * 100.0,
                scale.classes
            );
        }
        let profiling = images.generate(scale.profile_per_class, 0xF1E1D);
        let eval_ds = images.generate(scale.eval_per_class, 0xE7A1);
        let rates = FiringRateProfiler::new(config.tail_layers)
            .profile(&net, &profiling)
            .expect("profiling matches network");
        let confusion = ConfusionMatrix::measure(&net, &profiling).expect("confusion");
        let eval = TailEvaluator::new(&net, &eval_ds, config.tail_layers).expect("evaluator");
        Self {
            images,
            net,
            rates,
            confusion,
            eval,
            config,
            scale,
        }
    }

    /// A cloud server wrapping this rig's network (re-profiles internally).
    pub fn cloud(&self) -> CloudServer {
        let profiling = self.images.generate(self.scale.profile_per_class, 0xF1E1D);
        let eval_ds = self.images.generate(self.scale.eval_per_class, 0xE7A1);
        CloudServer::new(self.net.clone(), &profiling, &eval_ds, self.config)
            .expect("cloud assembles from the same pieces")
    }

    /// A fresh evaluation dataset (distinct seed from the ε-check set) for
    /// reporting final accuracies.
    pub fn holdout(&self) -> Dataset {
        self.images.generate(self.scale.eval_per_class, 0x0D0E)
    }
}

fn cache_path(key: &str) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target)
        .join("capnn-cache")
        .join(format!("{key}.json"))
}

fn load_or_train(images: &SyntheticImages, scale: Scale) -> Network {
    let path = cache_path(&scale.cache_key());
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(net) = serde_json::from_slice::<Network>(&bytes) {
            return net;
        }
    }
    let net = train_network(images, scale);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(json) = serde_json::to_vec(&net) {
        let _ = std::fs::write(&path, json);
    }
    net
}

fn train_network(images: &SyntheticImages, scale: Scale) -> Network {
    let cfg = VggConfig::vgg_mini(scale.classes);
    let mut net = NetworkBuilder::vgg(&cfg, 0x5EED)
        .build()
        .expect("vgg-mini builds");
    let train = images.generate(scale.train_per_class, 0x7EA1);
    let tcfg = TrainerConfig {
        epochs: scale.epochs,
        learning_rate: 0.03,
        lr_decay: 0.92,
        dropout: 0.1,
        ..TrainerConfig::default()
    };
    let report = Trainer::new(tcfg, 0xACC)
        .fit(&mut net, train.samples())
        .expect("training runs");
    eprintln!(
        "[rig] trained vgg-mini: {} classes, final train accuracy {:.1}%",
        scale.classes,
        report.final_accuracy() * 100.0
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_fallback() {
        // no env set in tests → small
        assert_eq!(Scale::from_env(), Scale::small());
    }

    #[test]
    fn cache_key_distinguishes_scales() {
        assert_ne!(Scale::small().cache_key(), Scale::full().cache_key());
    }
}
