//! CAPTOR-style class-adaptive filter pruning (the paper's reference [11],
//! Qin et al., ASP-DAC 2019), re-implemented so Table III compares both
//! systems on the same substrate.
//!
//! CAPTOR clusters filters by their class-conditional activation statistics
//! and prunes at *cluster* granularity: a cluster is kept when it is
//! relevant to any class in the predefined subset. Our implementation
//! captures its three distinguishing properties relative to CAP'NN:
//!
//! * **cluster granularity** — units with similar class-activation profiles
//!   are grouped (greedy cosine-similarity clustering of firing-rate rows)
//!   and kept or pruned together, so one needed unit protects its whole
//!   cluster;
//! * **relevance is unweighted** — a cluster is kept if it matters to *any*
//!   class in the subset (`max_k max_{n∈cluster} F(n, k)`), with no usage
//!   distribution; and
//! * **no miseffectual analysis** — only low-relevance clusters are removed.
//!
//! The same per-class ε accuracy check as CAP'NN gates the threshold search,
//! so both systems are tuned to the same quality bar and the measured gap is
//! due to mechanism, not tolerance.

use capnn_core::{CapnnError, PruningConfig, TailEvaluator};
use capnn_nn::{Network, PruneMask};
use capnn_profile::{FiringRates, LayerRates};

/// CAPTOR-style class-adaptive pruner.
#[derive(Debug, Clone, Copy)]
pub struct CaptorPruner {
    config: PruningConfig,
    /// Minimum cosine similarity for a unit to join a cluster.
    cluster_similarity: f32,
}

impl CaptorPruner {
    /// Creates a pruner; reuses [`PruningConfig`]'s threshold-search fields
    /// (`t_start`, `step`, `tail_layers`, `epsilon`).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the configuration is invalid.
    pub fn new(config: PruningConfig) -> Result<Self, CapnnError> {
        config.validate()?;
        Ok(Self {
            config,
            cluster_similarity: 0.75,
        })
    }

    /// Overrides the clustering similarity threshold (higher → finer
    /// clusters → more aggressive pruning).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if `similarity` is outside `(0, 1]`.
    pub fn with_cluster_similarity(mut self, similarity: f32) -> Result<Self, CapnnError> {
        if !(similarity > 0.0 && similarity <= 1.0) {
            return Err(CapnnError::Config(format!(
                "cluster similarity must be in (0, 1], got {similarity}"
            )));
        }
        self.cluster_similarity = similarity;
        Ok(self)
    }

    /// Groups a layer's units into activation-profile clusters (greedy: a
    /// unit joins the first cluster whose centroid it matches by cosine
    /// similarity, else founds a new one).
    pub fn cluster_units(&self, rates: &LayerRates) -> Vec<Vec<usize>> {
        let units = rates.units();
        let classes = rates.classes();
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut centroids: Vec<Vec<f32>> = Vec::new();
        for n in 0..units {
            let row: Vec<f32> = (0..classes).map(|c| rates.rate(n, c)).collect();
            let mut joined = false;
            for (ci, centroid) in centroids.iter_mut().enumerate() {
                if cosine(&row, centroid) >= self.cluster_similarity {
                    clusters[ci].push(n);
                    // running centroid update
                    let m = clusters[ci].len() as f32;
                    for (cv, &rv) in centroid.iter_mut().zip(&row) {
                        *cv += (rv - *cv) / m;
                    }
                    joined = true;
                    break;
                }
            }
            if !joined {
                clusters.push(vec![n]);
                centroids.push(row);
            }
        }
        clusters
    }

    /// Prunes for the class subset `classes` at cluster granularity: a
    /// cluster whose maximal firing rate over the subset (over all member
    /// units) falls below the searched threshold is removed wholesale, as
    /// long as no subset class degrades by more than ε.
    ///
    /// # Errors
    ///
    /// Returns an error if `classes` is empty/out of range or rates are
    /// missing for a tail layer.
    pub fn prune(
        &self,
        net: &Network,
        rates: &FiringRates,
        eval: &TailEvaluator,
        classes: &[usize],
    ) -> Result<PruneMask, CapnnError> {
        if classes.is_empty() {
            return Err(CapnnError::Profile("no classes requested".into()));
        }
        if let Some(&bad) = classes.iter().find(|&&c| c >= rates.num_classes()) {
            return Err(CapnnError::Profile(format!(
                "class {bad} out of range for {} classes",
                rates.num_classes()
            )));
        }
        let prunable = net.prunable_layers();
        let tail: Vec<usize> = {
            let mut t = net.prunable_tail(self.config.tail_layers);
            if t.last() == prunable.last() {
                t.pop();
            }
            t
        };
        let mut mask = PruneMask::all_kept(net);
        for &li in &tail {
            let lr = rates
                .for_layer(li)
                .ok_or_else(|| CapnnError::Mismatch(format!("no firing rates for layer {li}")))?;
            let units = lr.units();
            let clusters = self.cluster_units(lr);
            let relevance: Vec<f32> = clusters
                .iter()
                .map(|members| {
                    members
                        .iter()
                        .flat_map(|&n| classes.iter().map(move |&k| lr.rate(n, k)))
                        .fold(f32::NEG_INFINITY, f32::max)
                })
                .collect();
            let mut t = self.config.t_start;
            loop {
                let mut flags = vec![true; units];
                for (cluster, &rel) in clusters.iter().zip(&relevance) {
                    if rel < t {
                        for &n in cluster {
                            flags[n] = false;
                        }
                    }
                }
                let mut candidate = mask.clone();
                candidate.set_layer(li, flags)?;
                let degradation = eval.max_degradation(&candidate, Some(classes))?;
                if degradation <= self.config.epsilon {
                    mask = candidate;
                    break;
                }
                t -= self.config.step;
                if t <= 0.0 {
                    break;
                }
            }
        }
        Ok(mask)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        // two silent units are maximally similar
        return if na == nb { 1.0 } else { 0.0 };
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{model_size, NetworkBuilder, Trainer, TrainerConfig};
    use capnn_profile::FiringRateProfiler;
    use capnn_tensor::Tensor;

    fn rig() -> (Network, FiringRates, TailEvaluator) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let rates = FiringRateProfiler::new(3)
            .profile(&net, &gen.generate(20, 2))
            .unwrap();
        let eval = TailEvaluator::new(&net, &gen.generate(15, 3), 3).unwrap();
        (net, rates, eval)
    }

    #[test]
    fn clusters_partition_units() {
        let (_, rates, _) = rig();
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        for lr in rates.layers() {
            let clusters = pruner.cluster_units(lr);
            let mut seen = vec![false; lr.units()];
            for cluster in &clusters {
                assert!(!cluster.is_empty());
                for &n in cluster {
                    assert!(!seen[n], "unit {n} in two clusters");
                    seen[n] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every unit clustered");
        }
    }

    #[test]
    fn identical_profiles_share_a_cluster() {
        let lr = LayerRates {
            layer: 0,
            rates: Tensor::from_vec(
                vec![
                    0.9, 0.1, 0.0, //
                    0.9, 0.1, 0.0, // same profile as unit 0
                    0.0, 0.0, 0.8, // different
                ],
                &[3, 3],
            )
            .unwrap(),
        };
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        let clusters = pruner.cluster_units(&lr);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2]);
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let (net, rates, eval) = rig();
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        for classes in [vec![0], vec![0, 1], vec![0, 1, 2, 3]] {
            let mask = pruner.prune(&net, &rates, &eval, &classes).unwrap();
            let d = eval.max_degradation(&mask, Some(&classes)).unwrap();
            assert!(
                d <= PruningConfig::fast().epsilon + 1e-6,
                "{classes:?}: degradation {d}"
            );
        }
    }

    #[test]
    fn smaller_subsets_prune_more() {
        let (net, rates, eval) = rig();
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        let small = pruner.prune(&net, &rates, &eval, &[0]).unwrap();
        let large = pruner.prune(&net, &rates, &eval, &[0, 1, 2, 3]).unwrap();
        let s_small = model_size(&net, &small).unwrap().total();
        let s_large = model_size(&net, &large).unwrap().total();
        assert!(
            s_small <= s_large,
            "1 class {s_small} vs 4 classes {s_large}"
        );
    }

    #[test]
    fn coarser_clusters_prune_no_more_than_finer() {
        let (net, rates, eval) = rig();
        let coarse = CaptorPruner::new(PruningConfig::fast())
            .unwrap()
            .with_cluster_similarity(0.5)
            .unwrap();
        let fine = CaptorPruner::new(PruningConfig::fast())
            .unwrap()
            .with_cluster_similarity(0.999)
            .unwrap();
        let m_coarse = coarse.prune(&net, &rates, &eval, &[0]).unwrap();
        let m_fine = fine.prune(&net, &rates, &eval, &[0]).unwrap();
        // coarse clusters keep whole groups → at least as many units kept
        assert!(m_coarse.pruned_count() <= m_fine.pruned_count() + 2);
    }

    #[test]
    fn rejects_bad_requests() {
        let (net, rates, eval) = rig();
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        assert!(pruner.prune(&net, &rates, &eval, &[]).is_err());
        assert!(pruner.prune(&net, &rates, &eval, &[42]).is_err());
        assert!(CaptorPruner::new(PruningConfig::fast())
            .unwrap()
            .with_cluster_similarity(0.0)
            .is_err());
    }

    #[test]
    fn output_layer_untouched() {
        let (net, rates, eval) = rig();
        let pruner = CaptorPruner::new(PruningConfig::fast()).unwrap();
        let mask = pruner.prune(&net, &rates, &eval, &[0, 1]).unwrap();
        let out = *net.prunable_layers().last().unwrap();
        assert_eq!(mask.kept_in_layer(out), 4);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(super::cosine(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(super::cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((super::cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
    }
}
