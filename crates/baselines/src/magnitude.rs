//! Unstructured magnitude pruning (Han-style, the paper's reference [4]).
//!
//! Zeroes the globally smallest-magnitude weights. Unstructured pruning does
//! not shrink the dense tensor storage, so its "model size" is the count of
//! *non-zero* parameters — reported separately from the structured
//! accounting in `capnn_nn::model_size`.

use capnn_nn::{Layer, Network, NnError};

/// Outcome of a magnitude-pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityReport {
    /// Weights zeroed by this pass.
    pub zeroed: usize,
    /// Total weight parameters considered.
    pub total: usize,
}

impl SparsityReport {
    /// Fraction of weights zeroed.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.zeroed as f64 / self.total as f64
        }
    }
}

/// Zeroes the `fraction` smallest-magnitude weights across all dense and
/// conv layers of `net` (biases are kept). Returns the achieved sparsity.
///
/// # Errors
///
/// Returns [`NnError::Config`] if `fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use capnn_baselines::magnitude_prune;
/// use capnn_nn::NetworkBuilder;
///
/// let mut net = NetworkBuilder::mlp(&[4, 16, 3], 1).build().unwrap();
/// let report = magnitude_prune(&mut net, 0.5).unwrap();
/// assert!((report.sparsity() - 0.5).abs() < 0.05);
/// ```
pub fn magnitude_prune(net: &mut Network, fraction: f64) -> Result<SparsityReport, NnError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(NnError::Config(format!(
            "prune fraction must be in [0, 1], got {fraction}"
        )));
    }
    // Collect all weight magnitudes to find the global threshold.
    let mut magnitudes: Vec<f32> = Vec::new();
    for layer in net.layers() {
        match layer {
            Layer::Dense(d) => magnitudes.extend(d.weights().as_slice().iter().map(|w| w.abs())),
            Layer::Conv2d(c) => magnitudes.extend(c.weights().as_slice().iter().map(|w| w.abs())),
            _ => {}
        }
    }
    let total = magnitudes.len();
    let cut = ((total as f64) * fraction).round() as usize;
    if cut == 0 {
        return Ok(SparsityReport { zeroed: 0, total });
    }
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = magnitudes[(cut - 1).min(total.saturating_sub(1))];
    let mut zeroed = 0usize;
    for layer in net.layers_mut() {
        let weights = match layer {
            Layer::Dense(d) => d.weights_mut(),
            Layer::Conv2d(c) => c.weights_mut(),
            _ => continue,
        };
        for w in weights.as_mut_slice() {
            if w.abs() <= threshold && *w != 0.0 && zeroed < cut {
                *w = 0.0;
                zeroed += 1;
            }
        }
    }
    Ok(SparsityReport { zeroed, total })
}

/// Counts the non-zero weight parameters of `net` (the effective model size
/// after unstructured pruning).
pub fn nonzero_weights(net: &Network) -> usize {
    net.layers()
        .iter()
        .map(|layer| match layer {
            Layer::Dense(d) => d.weights().as_slice().iter().filter(|&&w| w != 0.0).count(),
            Layer::Conv2d(c) => c.weights().as_slice().iter().filter(|&&w| w != 0.0).count(),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_nn::NetworkBuilder;

    #[test]
    fn prunes_requested_fraction() {
        let mut net = NetworkBuilder::mlp(&[8, 32, 4], 3).build().unwrap();
        let before = nonzero_weights(&net);
        let report = magnitude_prune(&mut net, 0.25).unwrap();
        let after = nonzero_weights(&net);
        assert_eq!(before - after, report.zeroed);
        assert!((report.sparsity() - 0.25).abs() < 0.02);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut net = NetworkBuilder::mlp(&[4, 8, 2], 1).build().unwrap();
        let before = net.clone();
        let report = magnitude_prune(&mut net, 0.0).unwrap();
        assert_eq!(report.zeroed, 0);
        assert_eq!(net, before);
    }

    #[test]
    fn full_fraction_zeroes_everything() {
        let mut net = NetworkBuilder::mlp(&[4, 8, 2], 1).build().unwrap();
        magnitude_prune(&mut net, 1.0).unwrap();
        assert_eq!(nonzero_weights(&net), 0);
    }

    #[test]
    fn rejects_bad_fraction() {
        let mut net = NetworkBuilder::mlp(&[4, 8, 2], 1).build().unwrap();
        assert!(magnitude_prune(&mut net, -0.1).is_err());
        assert!(magnitude_prune(&mut net, 1.1).is_err());
    }

    #[test]
    fn small_weights_go_first() {
        let mut net = NetworkBuilder::mlp(&[4, 8, 2], 5).build().unwrap();
        // find the largest |w| before pruning
        let max_before = net
            .layers()
            .iter()
            .filter_map(|l| match l {
                capnn_nn::Layer::Dense(d) => d
                    .weights()
                    .as_slice()
                    .iter()
                    .map(|w| w.abs())
                    .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.max(x)))),
                _ => None,
            })
            .fold(0.0f32, f32::max);
        magnitude_prune(&mut net, 0.5).unwrap();
        // the largest weight must survive
        let survives = net.layers().iter().any(|l| match l {
            capnn_nn::Layer::Dense(d) => d
                .weights()
                .as_slice()
                .iter()
                .any(|w| (w.abs() - max_before).abs() < 1e-7),
            _ => false,
        });
        assert!(survives);
    }
}
