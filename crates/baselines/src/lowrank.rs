//! Low-rank approximation baseline (the paper's related-work category:
//! SVD/Tucker-style structure simplification, reference [8]).
//!
//! Hidden dense layers `W ∈ R^{out×in}` are factorized through a truncated
//! SVD `W ≈ (U_r Σ_r) · V_rᵀ` and replaced by two stacked dense layers of
//! inner width `r`, shrinking parameters whenever `r·(in+out) < in·out`.
//! Like the channel/magnitude baselines this is *class-unaware*; it is
//! included so the repo covers all three families the paper positions
//! against, and because CAP'NN composes with it the same way it composes
//! with channel pruning.
//!
//! The SVD is computed exactly (no randomized sketching) via a symmetric
//! Jacobi eigensolver on `WᵀW` — robust and amply fast at substrate scale.

use capnn_nn::{Dense, Layer, Network, NnError};
use capnn_tensor::Tensor;

/// Result of a truncated SVD: `a ≈ u * diag(s) * vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `[m × r]`.
    pub u: Tensor,
    /// Singular values, descending, length `r`.
    pub s: Vec<f32>,
    /// Right singular vectors, `[n × r]`.
    pub v: Tensor,
}

impl TruncatedSvd {
    /// Reconstructs the rank-`r` approximation `u * diag(s) * vᵀ` as an
    /// `[m × n]` tensor.
    pub fn reconstruct(&self) -> Tensor {
        let m = self.u.dims()[0];
        let n = self.v.dims()[0];
        let r = self.s.len();
        let mut out = Tensor::zeros(&[m, n]);
        let uv = self.u.as_slice();
        let vv = self.v.as_slice();
        let ov = out.as_mut_slice();
        for (k, &sk) in self.s.iter().enumerate() {
            for i in 0..m {
                let uik = uv[i * r + k] * sk;
                if uik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    ov[i * n + j] += uik * vv[j * r + k];
                }
            }
        }
        out
    }
}

/// Computes the rank-`r` truncated SVD of a rank-2 tensor via Jacobi
/// eigen-decomposition of `AᵀA`.
///
/// # Errors
///
/// Returns [`NnError::Config`] if `a` is not rank 2 or `rank` is zero or
/// exceeds `min(m, n)`.
///
/// # Examples
///
/// ```
/// use capnn_baselines::truncated_svd;
/// use capnn_tensor::Tensor;
///
/// // a rank-1 matrix is reproduced exactly by a rank-1 SVD
/// let a = Tensor::from_vec(vec![2.0, 4.0, 1.0, 2.0], &[2, 2]).unwrap();
/// let svd = truncated_svd(&a, 1).unwrap();
/// let back = svd.reconstruct();
/// for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
///     assert!((x - y).abs() < 1e-4);
/// }
/// ```
pub fn truncated_svd(a: &Tensor, rank: usize) -> Result<TruncatedSvd, NnError> {
    if a.shape().rank() != 2 {
        return Err(NnError::Config(format!(
            "svd input must be rank 2, got {}",
            a.shape()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if rank == 0 || rank > m.min(n) {
        return Err(NnError::Config(format!(
            "rank must be in 1..={}, got {rank}",
            m.min(n)
        )));
    }
    // Gram matrix G = AᵀA (n×n, symmetric PSD).
    let av = a.as_slice();
    let mut g = vec![0.0f64; n * n];
    for row in 0..m {
        let ar = &av[row * n..(row + 1) * n];
        for i in 0..n {
            let x = ar[i] as f64;
            if x == 0.0 {
                continue;
            }
            for j in i..n {
                g[i * n + j] += x * ar[j] as f64;
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            g[i * n + j] = g[j * n + i];
        }
    }
    let (eigvals, eigvecs) = jacobi_eigen_symmetric(&mut g, n);
    // sort descending by eigenvalue
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| {
        eigvals[y]
            .partial_cmp(&eigvals[x])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut s = Vec::with_capacity(rank);
    let mut v = Tensor::zeros(&[n, rank]);
    {
        let vv = v.as_mut_slice();
        for (k, &col) in order.iter().take(rank).enumerate() {
            s.push(eigvals[col].max(0.0).sqrt() as f32);
            for i in 0..n {
                vv[i * rank + k] = eigvecs[i * n + col] as f32;
            }
        }
    }
    // U = A V Σ⁻¹ (columns with σ ≈ 0 are left zero).
    let mut u = Tensor::zeros(&[m, rank]);
    {
        let uv = u.as_mut_slice();
        let vv = v.as_slice();
        for i in 0..m {
            let ar = &av[i * n..(i + 1) * n];
            for (k, &sk) in s.iter().enumerate() {
                if sk <= 1e-12 {
                    continue;
                }
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += ar[j] * vv[j * rank + k];
                }
                uv[i * rank + k] = acc / sk;
            }
        }
    }
    Ok(TruncatedSvd { u, s, v })
}

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix stored row-major
/// in `g` (destroyed). Returns `(eigenvalues, eigenvectors)` with
/// eigenvectors in columns.
fn jacobi_eigen_symmetric(g: &mut [f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _sweep in 0..60 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += g[i * n + j] * g[i * n + j];
            }
        }
        if off.sqrt() < 1e-10 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = g[p * n + q];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = g[p * n + p];
                let aqq = g[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let gkp = g[k * n + p];
                    let gkq = g[k * n + q];
                    g[k * n + p] = c * gkp - s * gkq;
                    g[k * n + q] = s * gkp + c * gkq;
                }
                for k in 0..n {
                    let gpk = g[p * n + k];
                    let gqk = g[q * n + k];
                    g[p * n + k] = c * gpk - s * gqk;
                    g[q * n + k] = s * gpk + c * gqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigvals: Vec<f64> = (0..n).map(|i| g[i * n + i]).collect();
    (eigvals, v)
}

/// Replaces each hidden dense layer of `net` with a rank-`⌈fraction·full⌉`
/// factorization when that saves parameters. The output layer is left
/// intact (its rows are class logits). Returns the compressed network and
/// the number of layers factorized.
///
/// # Errors
///
/// Returns [`NnError::Config`] if `fraction` is outside `(0, 1]`.
pub fn low_rank_compress(net: &Network, fraction: f64) -> Result<(Network, usize), NnError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(NnError::Config(format!(
            "rank fraction must be in (0, 1], got {fraction}"
        )));
    }
    let prunable = net.prunable_layers();
    let output_layer = prunable.last().copied();
    let mut layers = Vec::with_capacity(net.len() + 2);
    let mut factorized = 0usize;
    for (i, layer) in net.layers().iter().enumerate() {
        match layer {
            Layer::Dense(d) if Some(i) != output_layer => {
                let (out_f, in_f) = (d.out_features(), d.in_features());
                let full_rank = out_f.min(in_f);
                let r = ((full_rank as f64 * fraction).ceil() as usize).clamp(1, full_rank);
                // parameters: r*(in+out) + r + out  vs  in*out + out
                if r * (in_f + out_f) + r < in_f * out_f {
                    let svd = truncated_svd(d.weights(), r)?;
                    // first factor: x ↦ Vᵀ x (r × in), no bias
                    let first = Dense::new(svd.v.transpose()?, Tensor::zeros(&[r]))?;
                    // second factor: (U Σ) (out × r), original bias
                    let mut us = Tensor::zeros(&[out_f, r]);
                    {
                        let usv = us.as_mut_slice();
                        let uv = svd.u.as_slice();
                        for row in 0..out_f {
                            for (k, &sk) in svd.s.iter().enumerate() {
                                usv[row * r + k] = uv[row * r + k] * sk;
                            }
                        }
                    }
                    let second = Dense::new(us, d.bias().clone())?;
                    layers.push(Layer::Dense(first));
                    layers.push(Layer::Dense(second));
                    factorized += 1;
                } else {
                    layers.push(layer.clone());
                }
            }
            other => layers.push(other.clone()),
        }
    }
    Ok((Network::new(layers, net.input_dims())?, factorized))
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_nn::{Engine, InferenceRequest, NetworkBuilder};
    use capnn_tensor::XorShiftRng;

    #[test]
    fn svd_reconstructs_full_rank_exactly() {
        let mut rng = XorShiftRng::new(3);
        let a = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let svd = truncated_svd(&a, 4).unwrap();
        let back = svd.reconstruct();
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn singular_values_descend_and_are_nonnegative() {
        let mut rng = XorShiftRng::new(4);
        let a = Tensor::uniform(&[8, 6], -1.0, 1.0, &mut rng);
        let svd = truncated_svd(&a, 6).unwrap();
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-6));
        assert!(svd.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn reconstruction_error_decreases_with_rank() {
        let mut rng = XorShiftRng::new(5);
        let a = Tensor::uniform(&[10, 8], -1.0, 1.0, &mut rng);
        let err = |r| {
            let svd = truncated_svd(&a, r).unwrap();
            a.sub(&svd.reconstruct()).unwrap().norm_sq()
        };
        let e2 = err(2);
        let e4 = err(4);
        let e8 = err(8);
        assert!(e2 >= e4 && e4 >= e8 - 1e-4, "{e2} {e4} {e8}");
        assert!(e8 < 1e-3);
    }

    #[test]
    fn svd_orthonormal_right_vectors() {
        let mut rng = XorShiftRng::new(6);
        let a = Tensor::uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let svd = truncated_svd(&a, 3).unwrap();
        let v = svd.v.as_slice();
        for k1 in 0..3 {
            for k2 in 0..3 {
                let dot: f32 = (0..5).map(|i| v[i * 3 + k1] * v[i * 3 + k2]).sum();
                let expected = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-3, "v{k1}·v{k2} = {dot}");
            }
        }
    }

    #[test]
    fn svd_rejects_bad_args() {
        let a = Tensor::zeros(&[4, 4]);
        assert!(truncated_svd(&a, 0).is_err());
        assert!(truncated_svd(&a, 5).is_err());
        assert!(truncated_svd(&Tensor::zeros(&[4]), 1).is_err());
    }

    #[test]
    fn compression_shrinks_and_stays_close() {
        let net = NetworkBuilder::mlp(&[32, 48, 40, 5], 7).build().unwrap();
        let (compressed, factorized) = low_rank_compress(&net, 0.3).unwrap();
        assert_eq!(factorized, 2);
        assert!(compressed.param_count() < net.param_count());
        // same input/output contract
        assert_eq!(compressed.num_classes(), 5);
        let mut rng = XorShiftRng::new(9);
        let x = Tensor::uniform(&[32], -1.0, 1.0, &mut rng);
        let fwd = |n: &Network, x: &Tensor| {
            Engine::new(n)
                .run(InferenceRequest::single(x))
                .unwrap()
                .into_single()
                .unwrap()
        };
        let a = fwd(&net, &x);
        let b = fwd(&compressed, &x);
        assert_eq!(a.len(), b.len());
        // rank-30% of a random matrix is lossy but not wild
        let rel = a.sub(&b).unwrap().norm_sq().sqrt() / a.norm_sq().sqrt().max(1e-6);
        assert!(rel < 1.0, "relative output distortion {rel}");
    }

    #[test]
    fn full_fraction_preserves_function_when_beneficial() {
        // rank = min dim: factorization only applied if it saves params;
        // for a square-ish layer it won't be, so the net is unchanged.
        let net = NetworkBuilder::mlp(&[16, 16, 4], 3).build().unwrap();
        let (compressed, factorized) = low_rank_compress(&net, 1.0).unwrap();
        assert_eq!(factorized, 0);
        assert_eq!(compressed.param_count(), net.param_count());
    }

    #[test]
    fn output_layer_never_factorized() {
        let net = NetworkBuilder::mlp(&[64, 8, 32], 5).build().unwrap();
        // the 8→32 output layer is wide but must stay intact
        let (compressed, _) = low_rank_compress(&net, 0.1).unwrap();
        let last = compressed.layers().last().unwrap();
        match last {
            Layer::Dense(d) => assert_eq!(d.out_features(), 32),
            other => panic!("expected dense output, got {}", other.kind()),
        }
    }

    #[test]
    fn compress_rejects_bad_fraction() {
        let net = NetworkBuilder::mlp(&[4, 8, 2], 1).build().unwrap();
        assert!(low_rank_compress(&net, 0.0).is_err());
        assert!(low_rank_compress(&net, 1.5).is_err());
    }
}
