//! Pruning baselines for the CAP'NN reproduction.
//!
//! Two families, matching the paper's comparisons:
//!
//! * **Class-unaware** structured/unstructured pruning — [`magnitude_prune`]
//!   (Han-style weight pruning, reference \[4\]), [`StructuredPruner`] with
//!   [`ChannelMethod::Activation`] (He-style channel pruning proxy,
//!   reference \[5\]) and [`ChannelMethod::Reconstruction`] (ThiNet-style
//!   greedy selection, reference \[9\]). These produce the pruned + fine-tuned
//!   checkpoints CAP'NN-M is stacked on in Table II.
//! * **Class-aware prior work** — [`CaptorPruner`], a CAPTOR-style
//!   class-adaptive filter pruner (reference \[11\]), the comparison system
//!   of Table III.
//!
//! # Examples
//!
//! ```
//! use capnn_baselines::{ChannelMethod, StructuredPruner};
//! use capnn_data::{VectorClusters, VectorClustersConfig};
//! use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
//!
//! let gen = VectorClusters::new(VectorClustersConfig::easy(3, 5))?;
//! let mut net = NetworkBuilder::mlp(&[5, 16, 3], 2).build().unwrap();
//! let cfg = TrainerConfig { epochs: 5, ..TrainerConfig::default() };
//! Trainer::new(cfg, 1).fit(&mut net, gen.generate(15, 1).samples()).unwrap();
//!
//! let pruner = StructuredPruner::new(ChannelMethod::Activation, 0.25).unwrap();
//! let mask = pruner.prune_mask(&net, &gen.generate(5, 2)).unwrap();
//! assert!(mask.pruned_count() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod captor;
mod channel;
mod lowrank;
mod magnitude;

pub use captor::CaptorPruner;
pub use channel::{ChannelMethod, StructuredPruner};
pub use lowrank::{low_rank_compress, truncated_svd, TruncatedSvd};
pub use magnitude::{magnitude_prune, nonzero_weights, SparsityReport};
