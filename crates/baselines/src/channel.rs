//! Class-unaware structured channel/neuron pruning baselines.
//!
//! Two methods stand in for the retrained checkpoints the paper stacks
//! CAP'NN-M on in Table II:
//!
//! * [`ChannelMethod::Activation`] — rank units by mean activation magnitude
//!   over a calibration batch and drop the weakest (a practical proxy for He
//!   et al.'s LASSO channel selection, reference [5]).
//! * [`ChannelMethod::Reconstruction`] — greedy ThiNet-style selection
//!   (reference [9]): repeatedly remove the unit whose removal perturbs the
//!   *next layer's* pre-activation output least on the calibration batch.
//!
//! Both are class-*unaware*: they look at aggregate statistics over all
//! classes, never at a user's subset. Combined with a short fine-tune they
//! produce the "already-pruned, retrained model" CAP'NN-M is applied to.

use capnn_data::Dataset;
use capnn_nn::{Network, NnError, PruneMask, Trainer, TrainerConfig};
use serde::{Deserialize, Serialize};

/// Ranking rule for class-unaware structured pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelMethod {
    /// Mean |activation| over a calibration batch (He-style proxy).
    Activation,
    /// Greedy next-layer reconstruction error (ThiNet-style).
    Reconstruction,
}

impl std::fmt::Display for ChannelMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChannelMethod::Activation => "activation-channel",
            ChannelMethod::Reconstruction => "thinet-style",
        })
    }
}

/// Class-unaware structured pruner.
#[derive(Debug, Clone, Copy)]
pub struct StructuredPruner {
    /// Ranking rule.
    pub method: ChannelMethod,
    /// Fraction of units to remove per prunable layer (output layer exempt).
    pub fraction: f64,
}

impl StructuredPruner {
    /// Creates a pruner.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `fraction` is outside `[0, 1)`.
    pub fn new(method: ChannelMethod, fraction: f64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(NnError::Config(format!(
                "fraction must be in [0, 1), got {fraction}"
            )));
        }
        Ok(Self { method, fraction })
    }

    /// Computes the class-unaware prune mask using `calibration` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if calibration samples do not match the network.
    pub fn prune_mask(&self, net: &Network, calibration: &Dataset) -> Result<PruneMask, NnError> {
        let mut mask = PruneMask::all_kept(net);
        let prunable = net.prunable_layers();
        if prunable.len() <= 1 {
            return Ok(mask);
        }
        // never prune the output layer
        let targets = &prunable[..prunable.len() - 1];
        // Cache activation traces once.
        let traces: Vec<Vec<capnn_tensor::Tensor>> = calibration
            .samples()
            .iter()
            .map(|(x, _)| net.forward_trace(x))
            .collect::<Result<_, _>>()?;
        for &li in targets {
            let units = net.layers()[li].unit_count().unwrap_or(0);
            let drop = ((units as f64) * self.fraction).floor() as usize;
            if drop == 0 {
                continue;
            }
            let scores = match self.method {
                ChannelMethod::Activation => activation_scores(&traces, li, units),
                ChannelMethod::Reconstruction => {
                    reconstruction_scores(net, &traces, li, units, &mask)?
                }
            };
            // prune the `drop` lowest-scoring units
            let mut order: Vec<usize> = (0..units).collect();
            order.sort_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut flags = vec![true; units];
            for &u in order.iter().take(drop) {
                flags[u] = false;
            }
            mask.set_layer(li, flags)?;
        }
        Ok(mask)
    }

    /// Prunes, compacts and fine-tunes: the full Table II preparation step.
    ///
    /// # Errors
    ///
    /// Returns an error if pruning, compaction or fine-tuning fails.
    pub fn prune_and_finetune(
        &self,
        net: &Network,
        calibration: &Dataset,
        train: &Dataset,
        epochs: usize,
        seed: u64,
    ) -> Result<Network, NnError> {
        let mask = self.prune_mask(net, calibration)?;
        let mut compact = net.compact(&mask)?;
        if epochs > 0 {
            let cfg = TrainerConfig {
                epochs,
                learning_rate: 0.01,
                ..TrainerConfig::default()
            };
            Trainer::new(cfg, seed).fit(&mut compact, train.samples())?;
        }
        Ok(compact)
    }
}

/// Mean |activation| of each unit of layer `li` over all traces.
fn activation_scores(traces: &[Vec<capnn_tensor::Tensor>], li: usize, units: usize) -> Vec<f32> {
    let mut scores = vec![0.0f32; units];
    for trace in traces {
        let act = &trace[li + 1];
        let dims = act.dims();
        match dims.len() {
            1 => {
                for (u, &v) in act.as_slice().iter().enumerate() {
                    scores[u] += v.abs();
                }
            }
            3 => {
                let plane = dims[1] * dims[2];
                for (u, score) in scores.iter_mut().enumerate().take(units) {
                    let sum: f32 = act.as_slice()[u * plane..(u + 1) * plane]
                        .iter()
                        .map(|v| v.abs())
                        .sum();
                    *score += sum / plane as f32;
                }
            }
            _ => {}
        }
    }
    scores
}

/// ThiNet-style scores: the increase in the next parameterized layer's
/// output (squared error) when unit `u` of layer `li` is removed, summed
/// over the calibration traces. Lower = safer to remove.
fn reconstruction_scores(
    net: &Network,
    traces: &[Vec<capnn_tensor::Tensor>],
    li: usize,
    units: usize,
    base_mask: &PruneMask,
) -> Result<Vec<f32>, NnError> {
    // The "next layer output" is approximated by replaying a short window of
    // layers (until the next parameterized layer, inclusive).
    let prunable = net.prunable_layers();
    let next = prunable
        .iter()
        .copied()
        .find(|&p| p > li)
        .unwrap_or(net.len() - 1);
    let mut scores = vec![0.0f32; units];
    for trace in traces {
        let reference = replay_window(net, trace, li, next, base_mask, None)?;
        for (u, score) in scores.iter_mut().enumerate() {
            let perturbed = replay_window(net, trace, li, next, base_mask, Some(u))?;
            *score += reference
                .sub(&perturbed)
                .map(|d| d.norm_sq())
                .unwrap_or(f32::INFINITY);
        }
    }
    Ok(scores)
}

/// Replays layers `li..=next` from the cached input of layer `li`, applying
/// `base_mask` plus an optional extra pruned unit at layer `li`.
fn replay_window(
    net: &Network,
    trace: &[capnn_tensor::Tensor],
    li: usize,
    next: usize,
    base_mask: &PruneMask,
    extra_pruned: Option<usize>,
) -> Result<capnn_tensor::Tensor, NnError> {
    let mut mask = base_mask.clone();
    if let Some(u) = extra_pruned {
        mask.prune(li, u)?;
    }
    let mut x = trace[li].clone();
    for i in li..=next {
        x = net.layers()[i].forward(&x)?;
        if let Some(flags) = mask.layer_flags(i) {
            // zero pruned units exactly as forward_masked does
            let dims = x.dims().to_vec();
            match dims.len() {
                1 => {
                    for (v, &keep) in x.as_mut_slice().iter_mut().zip(flags) {
                        if !keep {
                            *v = 0.0;
                        }
                    }
                }
                3 => {
                    let plane = dims[1] * dims[2];
                    let xs = x.as_mut_slice();
                    for (cidx, &keep) in flags.iter().enumerate() {
                        if !keep {
                            for v in &mut xs[cidx * plane..(cidx + 1) * plane] {
                                *v = 0.0;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{evaluate_accuracy, model_size, NetworkBuilder};

    fn rig() -> (Network, Dataset, Dataset) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 5)).unwrap();
        let mut net = NetworkBuilder::mlp(&[5, 20, 16, 3], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(25, 1).samples())
            .unwrap();
        (net, gen.generate(10, 2), gen.generate(25, 3))
    }

    #[test]
    fn activation_pruning_drops_requested_fraction() {
        let (net, calib, _) = rig();
        let pruner = StructuredPruner::new(ChannelMethod::Activation, 0.25).unwrap();
        let mask = pruner.prune_mask(&net, &calib).unwrap();
        // 20 and 16 hidden units → 5 + 4 dropped, output untouched
        assert_eq!(mask.pruned_count(), 5 + 4);
        let out_layer = *net.prunable_layers().last().unwrap();
        assert_eq!(mask.kept_in_layer(out_layer), 3);
    }

    #[test]
    fn reconstruction_pruning_prefers_harmless_units() {
        let (net, calib, _) = rig();
        let pruner = StructuredPruner::new(ChannelMethod::Reconstruction, 0.2).unwrap();
        let mask = pruner.prune_mask(&net, &calib).unwrap();
        assert!(mask.pruned_count() > 0);
        // removing the selected units must hurt less than removing random
        // high-activation ones: compare masked model size sanity only
        let sz = model_size(&net, &mask).unwrap();
        let full = model_size(&net, &PruneMask::all_kept(&net)).unwrap();
        assert!(sz.total() < full.total());
    }

    #[test]
    fn finetuned_model_recovers_accuracy() {
        let (net, calib, train) = rig();
        let pruner = StructuredPruner::new(ChannelMethod::Activation, 0.3).unwrap();
        let pruned = pruner
            .prune_and_finetune(&net, &calib, &train, 5, 9)
            .unwrap();
        assert!(pruned.param_count() < net.param_count());
        let acc = evaluate_accuracy(&pruned, train.samples()).unwrap();
        assert!(acc > 0.8, "fine-tuned accuracy {acc}");
    }

    #[test]
    fn zero_fraction_prunes_nothing() {
        let (net, calib, _) = rig();
        let pruner = StructuredPruner::new(ChannelMethod::Activation, 0.0).unwrap();
        let mask = pruner.prune_mask(&net, &calib).unwrap();
        assert_eq!(mask.pruned_count(), 0);
    }

    #[test]
    fn rejects_fraction_one() {
        assert!(StructuredPruner::new(ChannelMethod::Activation, 1.0).is_err());
        assert!(StructuredPruner::new(ChannelMethod::Activation, -0.1).is_err());
    }

    #[test]
    fn method_display() {
        assert_eq!(ChannelMethod::Activation.to_string(), "activation-channel");
        assert_eq!(ChannelMethod::Reconstruction.to_string(), "thinet-style");
    }
}
