//! Per-layer workload extraction from a (masked) network.
//!
//! The energy model (§V-B of the paper, following Zhang et al. [14]) is
//! expressed in MAC operations, SRAM accesses and DRAM accesses per
//! inference. This module derives the operation counts; the systolic model
//! derives the access counts.

use capnn_nn::{Layer, Network, NnError, PruneMask};
use serde::{Deserialize, Serialize};

/// Operation counts of one layer for a single inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerWork {
    /// Multiply–accumulate operations.
    pub macs: u64,
    /// Weight parameters that must be resident (including biases).
    pub weight_words: u64,
    /// Input activation words read by the layer.
    pub input_words: u64,
    /// Output activation words produced by the layer.
    pub output_words: u64,
    /// ReLU evaluations.
    pub relu_ops: u64,
    /// Max-pool comparisons (window elements per output).
    pub pool_ops: u64,
}

impl LayerWork {
    /// Elementwise sum of two workloads.
    pub fn merge(&self, other: &LayerWork) -> LayerWork {
        LayerWork {
            macs: self.macs + other.macs,
            weight_words: self.weight_words + other.weight_words,
            input_words: self.input_words + other.input_words,
            output_words: self.output_words + other.output_words,
            relu_ops: self.relu_ops + other.relu_ops,
            pool_ops: self.pool_ops + other.pool_ops,
        }
    }
}

/// Whole-network workload: per-layer counts plus the total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkWorkload {
    /// One entry per network layer (non-compute layers contribute zeros for
    /// MACs but may contribute ReLU/pool ops).
    pub layers: Vec<LayerWork>,
}

impl NetworkWorkload {
    /// Sum over all layers.
    pub fn total(&self) -> LayerWork {
        self.layers
            .iter()
            .fold(LayerWork::default(), |acc, l| acc.merge(l))
    }
}

/// Derives the per-inference workload of `net` under `mask`.
///
/// Pruned units contribute no MACs, no weights and no activation traffic —
/// exactly what shipping the compacted model to the device achieves.
///
/// # Errors
///
/// Returns an error if the mask does not match the network.
///
/// # Examples
///
/// ```
/// use capnn_accel::network_workload;
/// use capnn_nn::{NetworkBuilder, PruneMask};
///
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
/// let w = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
/// assert_eq!(w.total().macs, (4 * 8 + 8 * 3) as u64);
/// ```
pub fn network_workload(net: &Network, mask: &PruneMask) -> Result<NetworkWorkload, NnError> {
    if mask.len() != net.len() {
        return Err(NnError::Config(format!(
            "mask spans {} layers, network has {}",
            mask.len(),
            net.len()
        )));
    }
    let shapes = net.layer_shapes()?;
    let mut layers = Vec::with_capacity(net.len());
    // kept units feeding the current layer
    let mut kept_inputs: u64 = match net.input_dims().len() {
        3 => net.input_dims()[0] as u64,
        _ => net.input_dims().iter().product::<usize>() as u64,
    };
    // spatial multiplicity of one kept input unit (H*W for CHW, 1 for flat)
    let mut input_mult: u64 = match net.input_dims().len() {
        3 => (net.input_dims()[1] * net.input_dims()[2]) as u64,
        _ => 1,
    };
    for (i, layer) in net.layers().iter().enumerate() {
        let out_shape = &shapes[i + 1];
        let work = match layer {
            Layer::Conv2d(c) => {
                let kept_out = mask.kept_in_layer(i) as u64;
                let (oh, ow) = (out_shape[1] as u64, out_shape[2] as u64);
                let k2 = (c.spec().kernel * c.spec().kernel) as u64;
                let macs = kept_out * oh * ow * kept_inputs * k2;
                let w = LayerWork {
                    macs,
                    weight_words: kept_out * kept_inputs * k2 + kept_out,
                    input_words: kept_inputs * input_mult,
                    output_words: kept_out * oh * ow,
                    relu_ops: 0,
                    pool_ops: 0,
                };
                kept_inputs = kept_out;
                input_mult = oh * ow;
                w
            }
            Layer::Dense(_) => {
                let kept_out = mask.kept_in_layer(i) as u64;
                let in_words = kept_inputs * input_mult;
                let w = LayerWork {
                    macs: kept_out * in_words,
                    weight_words: kept_out * in_words + kept_out,
                    input_words: in_words,
                    output_words: kept_out,
                    relu_ops: 0,
                    pool_ops: 0,
                };
                kept_inputs = kept_out;
                input_mult = 1;
                w
            }
            Layer::Relu => LayerWork {
                relu_ops: kept_inputs * input_mult,
                ..LayerWork::default()
            },
            Layer::MaxPool2d(spec) | Layer::AvgPool2d(spec) => {
                let (oh, ow) = (out_shape[1] as u64, out_shape[2] as u64);
                let window2 = (spec.window * spec.window) as u64;
                let w = LayerWork {
                    pool_ops: kept_inputs * oh * ow * window2,
                    ..LayerWork::default()
                };
                input_mult = oh * ow;
                w
            }
            Layer::Flatten => {
                input_mult = {
                    let in_shape = &shapes[i];
                    if in_shape.len() == 3 {
                        input_mult
                    } else {
                        1
                    }
                };
                // flatten: kept inputs stay channel-wise; expand into words
                let w = LayerWork::default();
                kept_inputs *= input_mult;
                input_mult = 1;
                w
            }
        };
        layers.push(work);
    }
    Ok(NetworkWorkload { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_nn::NetworkBuilder;

    #[test]
    fn mlp_mac_count_exact() {
        let net = NetworkBuilder::mlp(&[10, 20, 5], 1).build().unwrap();
        let w = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        assert_eq!(w.total().macs, (10 * 20 + 20 * 5) as u64);
        assert_eq!(w.total().relu_ops, 20);
        assert_eq!(w.total().weight_words, (10 * 20 + 20 + 20 * 5 + 5) as u64);
    }

    #[test]
    fn cnn_mac_count_matches_spec_formula() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 1)
            .build()
            .unwrap();
        let w = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        // conv: 4 out × 8×8 × 1 in × 9; dense1: 10 × (4×4×4); out: 3 × 10
        let conv = 4 * 64 * 9;
        let dense1 = 10 * 64;
        let out = 3 * 10;
        assert_eq!(w.total().macs, (conv + dense1 + out) as u64);
        // pooling: 4 channels × 4×4 outputs × 4 window elements
        assert_eq!(w.total().pool_ops, (4 * 16 * 4) as u64);
    }

    #[test]
    fn pruning_reduces_every_counter() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 1)
            .build()
            .unwrap();
        let full = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 0).unwrap();
        mask.prune(4, 3).unwrap();
        let pruned = network_workload(&net, &mask).unwrap();
        let f = full.total();
        let p = pruned.total();
        assert!(p.macs < f.macs);
        assert!(p.weight_words < f.weight_words);
        assert!(p.relu_ops < f.relu_ops);
        assert!(p.output_words < f.output_words);
    }

    #[test]
    fn pruned_conv_channel_removes_downstream_macs() {
        // conv channel pruned → dense consumes fewer inputs
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 1)
            .build()
            .unwrap();
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 1).unwrap();
        let w = network_workload(&net, &mask).unwrap();
        // dense layer (index 4) now sees 3 channels × 16 = 48 inputs
        assert_eq!(w.layers[4].macs, (10 * 48) as u64);
    }

    #[test]
    fn workload_merge_adds() {
        let a = LayerWork {
            macs: 1,
            weight_words: 2,
            input_words: 3,
            output_words: 4,
            relu_ops: 5,
            pool_ops: 6,
        };
        let s = a.merge(&a);
        assert_eq!(s.macs, 2);
        assert_eq!(s.pool_ops, 12);
    }

    #[test]
    fn mismatched_mask_rejected() {
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        let other = NetworkBuilder::mlp(&[4, 8, 8, 3], 1).build().unwrap();
        assert!(network_workload(&net, &PruneMask::all_kept(&other)).is_err());
    }
}
