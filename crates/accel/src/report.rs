//! Per-layer accelerator reporting: workload, access and energy breakdowns
//! in one table-friendly structure.
//!
//! The experiment binaries aggregate whole-network numbers; this module
//! exposes the layer-resolved view a hardware engineer would actually read
//! when deciding where pruning pays (spoiler at substrate scale: DRAM
//! traffic for the dense layers, MACs for the conv stack).

use crate::energy::{inference_energy, EnergyBreakdown, EnergyModel};
use crate::systolic::SystolicModel;
use crate::workload::{LayerWork, NetworkWorkload};
use serde::{Deserialize, Serialize};

/// One layer's complete accelerator profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Layer index in the network.
    pub layer: usize,
    /// Layer kind tag (`"conv"`, `"dense"`, …).
    pub kind: String,
    /// Operation counts.
    pub work: LayerWork,
    /// SRAM/DRAM accesses and cycles on the modeled accelerator.
    pub sram_accesses: u64,
    /// DRAM accesses (words).
    pub dram_accesses: u64,
    /// Estimated cycles.
    pub cycles: u64,
    /// Energy of this layer alone (pJ).
    pub energy_pj: f64,
}

/// Layer-resolved accelerator profile of a network under a mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Per-layer profiles, in execution order.
    pub layers: Vec<LayerProfile>,
    /// Whole-network energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total cycles.
    pub total_cycles: u64,
}

impl NetworkProfile {
    /// The index of the layer consuming the most energy.
    pub fn hottest_layer(&self) -> Option<usize> {
        self.layers
            .iter()
            .max_by(|a, b| {
                a.energy_pj
                    .partial_cmp(&b.energy_pj)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|l| l.layer)
    }

    /// Energy of layer `layer` as a fraction of the total (0 if unknown).
    pub fn energy_share(&self, layer: usize) -> f64 {
        let total = self.energy.total_pj();
        if total == 0.0 {
            return 0.0;
        }
        self.layers
            .iter()
            .find(|l| l.layer == layer)
            .map_or(0.0, |l| l.energy_pj / total)
    }
}

/// Builds the layer-resolved profile from a workload and layer kinds.
///
/// `kinds` must align with `workload.layers` (one tag per layer, as
/// produced by walking `Network::layers()` and calling `Layer::kind`).
///
/// # Panics
///
/// Panics if `kinds.len() != workload.layers.len()`.
pub fn profile_network(
    model: &EnergyModel,
    systolic: &SystolicModel,
    workload: &NetworkWorkload,
    kinds: &[&str],
) -> NetworkProfile {
    assert_eq!(
        kinds.len(),
        workload.layers.len(),
        "one kind tag per workload layer"
    );
    let mut layers = Vec::with_capacity(workload.layers.len());
    let mut total_cycles = 0u64;
    for (i, (work, kind)) in workload.layers.iter().zip(kinds).enumerate() {
        let acc = systolic.layer_accesses(work);
        let single = NetworkWorkload {
            layers: vec![*work],
        };
        let e = inference_energy(model, &single, &acc);
        total_cycles += acc.cycles;
        layers.push(LayerProfile {
            layer: i,
            kind: (*kind).to_string(),
            work: *work,
            sram_accesses: acc.sram_accesses,
            dram_accesses: acc.dram_accesses,
            cycles: acc.cycles,
            energy_pj: e.total_pj(),
        });
    }
    let total_acc = systolic.network_accesses(workload);
    let energy = inference_energy(model, workload, &total_acc);
    NetworkProfile {
        layers,
        energy,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systolic::AcceleratorConfig;
    use crate::workload::network_workload;
    use capnn_nn::{NetworkBuilder, PruneMask};

    fn profile() -> NetworkProfile {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[12], 3, 1)
            .build()
            .unwrap();
        let wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let kinds: Vec<&str> = net.layers().iter().map(|l| l.kind()).collect();
        let systolic = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        profile_network(&EnergyModel::paper_table1(), &systolic, &wl, &kinds)
    }

    #[test]
    fn per_layer_energies_sum_to_total() {
        let p = profile();
        let layer_sum: f64 = p.layers.iter().map(|l| l.energy_pj).sum();
        assert!(
            (layer_sum - p.energy.total_pj()).abs() < 1e-6 * p.energy.total_pj().max(1.0),
            "{layer_sum} vs {}",
            p.energy.total_pj()
        );
    }

    #[test]
    fn cycles_sum_matches() {
        let p = profile();
        let sum: u64 = p.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(sum, p.total_cycles);
    }

    #[test]
    fn hottest_layer_is_a_compute_layer() {
        let p = profile();
        let hot = p.hottest_layer().unwrap();
        let kind = &p.layers[hot].kind;
        assert!(kind == "conv" || kind == "dense", "hottest was {kind}");
        let share = p.energy_share(hot);
        assert!(share > 0.0 && share <= 1.0);
    }

    #[test]
    fn energy_share_of_unknown_layer_is_zero() {
        let p = profile();
        assert_eq!(p.energy_share(999), 0.0);
    }

    #[test]
    #[should_panic(expected = "one kind tag per workload layer")]
    fn mismatched_kinds_panic() {
        let net = NetworkBuilder::mlp(&[4, 8, 2], 1).build().unwrap();
        let wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let systolic = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        profile_network(&EnergyModel::paper_table1(), &systolic, &wl, &["dense"]);
    }
}
