//! Analytical energy model with the paper's Table I component energies.
//!
//! Energy per inference = MACs × (multiplier + adder) + ReLU ops × ReLU
//! energy + pool ops × pool energy + SRAM accesses × SRAM energy + DRAM
//! accesses × DRAM energy. The component numbers are taken verbatim from
//! Table I of the paper (which sources them from Han et al. [4] and Nazemi
//! et al. [10]).

use crate::systolic::{AccessCounts, SystolicModel};
use crate::workload::NetworkWorkload;
use serde::{Deserialize, Serialize};

/// Per-component energies, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// 16-bit adder energy (pJ).
    pub adder_pj: f64,
    /// 16-bit multiplier energy (pJ).
    pub multiplier_pj: f64,
    /// Max-pool comparator energy per window element (pJ).
    pub max_pool_pj: f64,
    /// ReLU energy per activation (pJ).
    pub relu_pj: f64,
    /// SRAM access energy per word (pJ).
    pub sram_pj: f64,
    /// DRAM access energy per word (pJ).
    pub dram_pj: f64,
}

impl EnergyModel {
    /// The component energies of the paper's Table I.
    pub fn paper_table1() -> Self {
        Self {
            adder_pj: 0.4,
            multiplier_pj: 1.0,
            max_pool_pj: 1.2,
            relu_pj: 0.9,
            sram_pj: 5.0,
            dram_pj: 640.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_table1()
    }
}

/// Energy breakdown of one inference, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC (multiply + accumulate) energy.
    pub mac_pj: f64,
    /// ReLU energy.
    pub relu_pj: f64,
    /// Max-pool energy.
    pub pool_pj: f64,
    /// On-chip SRAM energy.
    pub sram_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.relu_pj + self.pool_pj + self.sram_pj + self.dram_pj
    }

    /// This breakdown's total relative to another's (the paper's
    /// "relative energy"). Returns 1.0 when `baseline` is zero.
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let b = baseline.total_pj();
        if b == 0.0 {
            1.0
        } else {
            self.total_pj() / b
        }
    }
}

/// Computes the energy of one inference given its workload and access
/// counts.
pub fn inference_energy(
    model: &EnergyModel,
    workload: &NetworkWorkload,
    accesses: &AccessCounts,
) -> EnergyBreakdown {
    let total = workload.total();
    EnergyBreakdown {
        mac_pj: total.macs as f64 * (model.adder_pj + model.multiplier_pj),
        relu_pj: total.relu_ops as f64 * model.relu_pj,
        pool_pj: total.pool_ops as f64 * model.max_pool_pj,
        sram_pj: accesses.sram_accesses as f64 * model.sram_pj,
        dram_pj: accesses.dram_accesses as f64 * model.dram_pj,
    }
}

/// Convenience: workload → systolic accesses → energy in one call.
pub fn network_energy(
    model: &EnergyModel,
    systolic: &SystolicModel,
    workload: &NetworkWorkload,
) -> EnergyBreakdown {
    let accesses = systolic.network_accesses(workload);
    inference_energy(model, workload, &accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systolic::AcceleratorConfig;
    use crate::workload::network_workload;
    use capnn_nn::{NetworkBuilder, PruneMask};

    #[test]
    fn table1_constants() {
        let m = EnergyModel::paper_table1();
        assert_eq!(m.adder_pj, 0.4);
        assert_eq!(m.multiplier_pj, 1.0);
        assert_eq!(m.max_pool_pj, 1.2);
        assert_eq!(m.relu_pj, 0.9);
        assert_eq!(m.sram_pj, 5.0);
        assert_eq!(m.dram_pj, 640.0);
        assert_eq!(m, EnergyModel::default());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let b = EnergyBreakdown {
            mac_pj: 1.0,
            relu_pj: 2.0,
            pool_pj: 3.0,
            sram_pj: 4.0,
            dram_pj: 5.0,
        };
        assert_eq!(b.total_pj(), 15.0);
    }

    #[test]
    fn relative_energy_of_identity_is_one() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 1)
            .build()
            .unwrap();
        let wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let sys = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let e = network_energy(&EnergyModel::paper_table1(), &sys, &wl);
        assert!((e.relative_to(&e) - 1.0).abs() < 1e-12);
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn pruned_energy_never_exceeds_original() {
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[12, 8], 3, 1)
            .build()
            .unwrap();
        let sys = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let model = EnergyModel::paper_table1();
        let full_wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let full = network_energy(&model, &sys, &full_wl);
        let mut mask = PruneMask::all_kept(&net);
        mask.prune(0, 0).unwrap();
        mask.prune(4, 1).unwrap();
        mask.prune(4, 2).unwrap();
        let pruned_wl = network_workload(&net, &mask).unwrap();
        let pruned = network_energy(&model, &sys, &pruned_wl);
        assert!(pruned.total_pj() <= full.total_pj());
        assert!(pruned.relative_to(&full) <= 1.0);
    }

    #[test]
    fn dram_dominates_when_buffers_tiny() {
        let net = NetworkBuilder::mlp(&[64, 128, 10], 1).build().unwrap();
        let wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
        let mut cfg = AcceleratorConfig::tpu_like();
        cfg.weight_sram_words = 32;
        cfg.act_sram_words = 32;
        let sys = SystolicModel::new(cfg).unwrap();
        let e = network_energy(&EnergyModel::paper_table1(), &sys, &wl);
        assert!(
            e.dram_pj > e.mac_pj,
            "DRAM {} vs MAC {}",
            e.dram_pj,
            e.mac_pj
        );
    }

    #[test]
    fn zero_baseline_relative_is_one() {
        let z = EnergyBreakdown::default();
        assert_eq!(z.relative_to(&z), 1.0);
    }
}
