//! TPU-like accelerator analytical model for the CAP'NN reproduction.
//!
//! The paper evaluates energy savings with an analytical model (Zhang et
//! al. \[14\]) over a TPU-style local-device accelerator (its Fig. 2), using
//! the component energies of its Table I. This crate implements that stack:
//!
//! 1. [`network_workload`] — per-layer MAC / weight / activation counts of a
//!    (masked) network;
//! 2. [`SystolicModel`] — a weight-stationary systolic-array access model
//!    producing SRAM/DRAM access and cycle counts;
//! 3. [`EnergyModel`] — Table I picojoule constants turning operation and
//!    access counts into an [`EnergyBreakdown`].
//!
//! # Examples
//!
//! ```
//! use capnn_accel::{network_energy, network_workload, AcceleratorConfig,
//!                   EnergyModel, SystolicModel};
//! use capnn_nn::{NetworkBuilder, PruneMask};
//!
//! let net = NetworkBuilder::mlp(&[8, 16, 4], 1).build().unwrap();
//! let wl = network_workload(&net, &PruneMask::all_kept(&net)).unwrap();
//! let sys = SystolicModel::new(AcceleratorConfig::tpu_like())?;
//! let energy = network_energy(&EnergyModel::paper_table1(), &sys, &wl);
//! assert!(energy.total_pj() > 0.0);
//! # Ok::<(), String>(())
//! ```

mod energy;
mod report;
mod systolic;
mod workload;

pub use energy::{inference_energy, network_energy, EnergyBreakdown, EnergyModel};
pub use report::{profile_network, LayerProfile, NetworkProfile};
pub use systolic::{AcceleratorConfig, AccessCounts, Dataflow, SystolicModel};
pub use workload::{network_workload, LayerWork, NetworkWorkload};
