//! Weight-stationary systolic-array access model (the local-device hardware
//! of the paper's Fig. 2, modeled after a TPU-style accelerator).
//!
//! The model maps each compute layer onto an `rows × cols` MAC array with
//! on-chip weight/activation SRAM and off-chip DRAM, and counts memory
//! accesses analytically:
//!
//! * weights stream DRAM → SRAM once per layer if they fit, otherwise once
//!   per tiling pass;
//! * each MAC reads its activation operand from SRAM once per reuse window
//!   (activations are broadcast down array rows, so an activation word is
//!   fetched once per *column tile* it feeds);
//! * partial sums stay in the array; finished outputs are written to SRAM
//!   and spilled to DRAM if the activation buffer cannot hold the layer's
//!   output.
//!
//! This is deliberately an *analytical* model — the paper evaluates energy
//! the same way (via Zhang et al.'s model [14]) rather than on silicon.

use crate::workload::{LayerWork, NetworkWorkload};
use serde::{Deserialize, Serialize};

/// Geometry and buffering of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// MAC array rows (input-channel direction).
    pub pe_rows: usize,
    /// MAC array columns (output-channel direction).
    pub pe_cols: usize,
    /// On-chip weight SRAM capacity, in words.
    pub weight_sram_words: usize,
    /// On-chip activation SRAM capacity, in words.
    pub act_sram_words: usize,
    /// Bytes per word (the paper uses 16-bit weights → 2 bytes).
    pub bytes_per_word: usize,
}

impl AcceleratorConfig {
    /// A small TPU-like configuration: 16×16 MACs, 32 K-word weight buffer,
    /// 16 K-word activation buffer, 16-bit words.
    pub fn tpu_like() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            weight_sram_words: 32 * 1024,
            act_sram_words: 16 * 1024,
            bytes_per_word: 2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first zero-valued field.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_rows == 0 || self.pe_cols == 0 {
            return Err("PE array dimensions must be positive".into());
        }
        if self.weight_sram_words == 0 || self.act_sram_words == 0 {
            return Err("SRAM capacities must be positive".into());
        }
        if self.bytes_per_word == 0 {
            return Err("bytes_per_word must be positive".into());
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::tpu_like()
    }
}

/// Memory-access and timing counts for one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// SRAM read + write accesses.
    pub sram_accesses: u64,
    /// DRAM read + write accesses (in words).
    pub dram_accesses: u64,
    /// Estimated MAC-array cycles.
    pub cycles: u64,
}

impl AccessCounts {
    /// Elementwise sum.
    pub fn merge(&self, other: &AccessCounts) -> AccessCounts {
        AccessCounts {
            sram_accesses: self.sram_accesses + other.sram_accesses,
            dram_accesses: self.dram_accesses + other.dram_accesses,
            cycles: self.cycles + other.cycles,
        }
    }
}

/// Which operand stays resident in the PE array.
///
/// * [`Dataflow::WeightStationary`] — TPU-style: weights are pinned in PE
///   registers; activations stream through. Minimizes weight SRAM traffic,
///   pays one activation read per row-group of MACs.
/// * [`Dataflow::OutputStationary`] — partial sums are pinned; both weights
///   and activations stream. Minimizes partial-sum movement, pays more
///   operand reads per MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights pinned in the array (the paper's TPU-like device, Fig. 2).
    #[default]
    WeightStationary,
    /// Partial sums pinned in the array.
    OutputStationary,
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dataflow::WeightStationary => "weight-stationary",
            Dataflow::OutputStationary => "output-stationary",
        })
    }
}

/// The analytical systolic-array model.
#[derive(Debug, Clone, Copy)]
pub struct SystolicModel {
    config: AcceleratorConfig,
    dataflow: Dataflow,
}

impl SystolicModel {
    /// Creates a weight-stationary model (the paper's device).
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is invalid.
    pub fn new(config: AcceleratorConfig) -> Result<Self, String> {
        Self::with_dataflow(config, Dataflow::WeightStationary)
    }

    /// Creates a model with an explicit dataflow.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is invalid.
    pub fn with_dataflow(config: AcceleratorConfig, dataflow: Dataflow) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config, dataflow })
    }

    /// The model's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The model's dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Access counts for one layer's workload.
    pub fn layer_accesses(&self, w: &LayerWork) -> AccessCounts {
        if w.macs == 0 {
            // Non-matrix layers (ReLU/pool) stream activations through SRAM.
            let streamed = w.relu_ops + w.pool_ops;
            return AccessCounts {
                sram_accesses: 2 * streamed,
                dram_accesses: 0,
                cycles: streamed / (self.config.pe_rows as u64 * self.config.pe_cols as u64).max(1)
                    + u64::from(!streamed.is_multiple_of(
                        (self.config.pe_rows as u64 * self.config.pe_cols as u64).max(1),
                    )),
            };
        }
        let cfg = &self.config;
        // Number of full weight-buffer refills needed for this layer.
        let weight_passes = w.weight_words.div_ceil(cfg.weight_sram_words as u64).max(1);
        // Column tiles: outputs mapped across pe_cols.
        let col_tiles = w.output_words.div_ceil(cfg.pe_cols as u64).max(1);
        let sram_accesses = match self.dataflow {
            Dataflow::WeightStationary => {
                // Each activation word is read from SRAM once per column
                // tile it feeds; reuse across pe_rows keeps a single read
                // per MAC row group (vertical broadcast). Weights read into
                // the array once per pass; outputs written once; inputs
                // written once when loaded from DRAM.
                let act_reads = w.macs / cfg.pe_rows as u64;
                let weight_reads = w.weight_words * weight_passes;
                act_reads + weight_reads + w.output_words + w.input_words
            }
            Dataflow::OutputStationary => {
                // Partial sums never move; both operands stream. Horizontal
                // activation reuse across pe_cols and vertical weight reuse
                // across pe_rows each save one dimension of reads, but both
                // operands stream per tile pass instead of only one.
                let act_reads = w.macs / cfg.pe_cols as u64;
                let weight_reads = w.macs / cfg.pe_rows as u64;
                act_reads + weight_reads + w.output_words + w.input_words
            }
        };
        // DRAM: weights fetched once per pass; activations fetched once;
        // outputs spilled if they do not fit in the activation buffer.
        let output_spill = if w.output_words > cfg.act_sram_words as u64 {
            2 * w.output_words // write + later read back
        } else {
            0
        };
        let input_refetch = if w.input_words > cfg.act_sram_words as u64 {
            // inputs do not fit: refetched once per weight pass
            w.input_words * weight_passes
        } else {
            w.input_words
        };
        let dram_accesses = w.weight_words * weight_passes + input_refetch + output_spill;
        // Cycles: perfect utilization bound plus one array-fill latency per
        // column tile.
        let array = (cfg.pe_rows * cfg.pe_cols) as u64;
        let cycles = w.macs.div_ceil(array) + col_tiles * (cfg.pe_rows as u64);
        AccessCounts {
            sram_accesses,
            dram_accesses,
            cycles,
        }
    }

    /// Access counts for a whole network workload.
    pub fn network_accesses(&self, workload: &NetworkWorkload) -> AccessCounts {
        workload
            .layers
            .iter()
            .map(|l| self.layer_accesses(l))
            .fold(AccessCounts::default(), |acc, a| acc.merge(&a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(macs: u64, weights: u64, inputs: u64, outputs: u64) -> LayerWork {
        LayerWork {
            macs,
            weight_words: weights,
            input_words: inputs,
            output_words: outputs,
            relu_ops: 0,
            pool_ops: 0,
        }
    }

    #[test]
    fn config_validation() {
        assert!(AcceleratorConfig::tpu_like().validate().is_ok());
        let mut c = AcceleratorConfig::tpu_like();
        c.pe_rows = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::tpu_like();
        c.weight_sram_words = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::tpu_like();
        c.bytes_per_word = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_layer_single_pass() {
        let model = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let w = work(1000, 100, 50, 20);
        let a = model.layer_accesses(&w);
        // one weight pass → dram = weights + inputs (fit) + no spill
        assert_eq!(a.dram_accesses, 100 + 50);
        assert!(a.sram_accesses > 0);
        assert!(a.cycles > 0);
    }

    #[test]
    fn oversized_weights_force_multiple_passes() {
        let mut cfg = AcceleratorConfig::tpu_like();
        cfg.weight_sram_words = 64;
        let model = SystolicModel::new(cfg).unwrap();
        let w = work(10_000, 200, 50, 20);
        let a = model.layer_accesses(&w);
        // 200 weights / 64-word buffer → 4 passes → 800 weight DRAM words
        assert!(a.dram_accesses >= 800);
    }

    #[test]
    fn output_spill_costs_dram() {
        let mut cfg = AcceleratorConfig::tpu_like();
        cfg.act_sram_words = 8;
        let model = SystolicModel::new(cfg).unwrap();
        let small = model.layer_accesses(&work(100, 10, 4, 4));
        let big = model.layer_accesses(&work(100, 10, 4, 100));
        assert!(big.dram_accesses > small.dram_accesses);
    }

    #[test]
    fn relu_layers_stream_without_dram() {
        let model = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let w = LayerWork {
            relu_ops: 500,
            ..LayerWork::default()
        };
        let a = model.layer_accesses(&w);
        assert_eq!(a.dram_accesses, 0);
        assert_eq!(a.sram_accesses, 1000);
    }

    #[test]
    fn monotone_in_workload() {
        let model = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let small = model.layer_accesses(&work(1000, 100, 50, 20));
        let large = model.layer_accesses(&work(2000, 200, 100, 40));
        assert!(large.sram_accesses >= small.sram_accesses);
        assert!(large.dram_accesses >= small.dram_accesses);
        assert!(large.cycles >= small.cycles);
    }

    #[test]
    fn output_stationary_trades_operand_reads() {
        let ws = SystolicModel::new(AcceleratorConfig::tpu_like()).unwrap();
        let os =
            SystolicModel::with_dataflow(AcceleratorConfig::tpu_like(), Dataflow::OutputStationary)
                .unwrap();
        assert_eq!(ws.dataflow(), Dataflow::WeightStationary);
        assert_eq!(os.dataflow(), Dataflow::OutputStationary);
        // high-reuse layer (many MACs per weight): weight-stationary should
        // need fewer SRAM accesses than output-stationary
        let w = work(100_000, 100, 500, 500);
        let a_ws = ws.layer_accesses(&w);
        let a_os = os.layer_accesses(&w);
        assert!(a_ws.sram_accesses < a_os.sram_accesses);
        // DRAM traffic is dataflow-independent in this model
        assert_eq!(a_ws.dram_accesses, a_os.dram_accesses);
    }

    #[test]
    fn dataflow_display() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "weight-stationary");
        assert_eq!(Dataflow::OutputStationary.to_string(), "output-stationary");
        assert_eq!(Dataflow::default(), Dataflow::WeightStationary);
    }

    #[test]
    fn merge_adds() {
        let a = AccessCounts {
            sram_accesses: 1,
            dram_accesses: 2,
            cycles: 3,
        };
        let s = a.merge(&a);
        assert_eq!(s.sram_accesses, 2);
        assert_eq!(s.dram_accesses, 4);
        assert_eq!(s.cycles, 6);
    }
}
