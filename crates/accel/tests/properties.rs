//! Property tests for the accelerator model: monotonicity and consistency
//! of workload, access and energy accounting under arbitrary pruning.

use capnn_accel::{
    inference_energy, network_workload, AcceleratorConfig, Dataflow, EnergyModel, SystolicModel,
};
use capnn_nn::{NetworkBuilder, PruneMask};
use capnn_tensor::XorShiftRng;
use proptest::prelude::*;

fn net() -> capnn_nn::Network {
    NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1), (6, 1)], &[16, 8], 4, 3)
        .build()
        .expect("builds")
}

fn random_mask(seed: u64) -> PruneMask {
    let net = net();
    let mut rng = XorShiftRng::new(seed);
    let mut mask = PruneMask::all_kept(&net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len() - 1] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        for u in 0..units {
            if rng.next_uniform() < 0.4 && mask.kept_in_layer(li) > 1 {
                mask.prune(li, u).expect("in range");
            }
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pruning_never_increases_any_counter(seed in any::<u64>()) {
        let net = net();
        let full = network_workload(&net, &PruneMask::all_kept(&net)).expect("wl");
        let pruned = network_workload(&net, &random_mask(seed)).expect("wl");
        let f = full.total();
        let p = pruned.total();
        prop_assert!(p.macs <= f.macs);
        prop_assert!(p.weight_words <= f.weight_words);
        prop_assert!(p.relu_ops <= f.relu_ops);
        prop_assert!(p.pool_ops <= f.pool_ops);
        prop_assert!(p.output_words <= f.output_words);
    }

    #[test]
    fn energy_nonnegative_and_pruning_monotone(seed in any::<u64>()) {
        let net = net();
        let sys = SystolicModel::new(AcceleratorConfig::tpu_like()).expect("cfg");
        let model = EnergyModel::paper_table1();
        let full_wl = network_workload(&net, &PruneMask::all_kept(&net)).expect("wl");
        let pruned_wl = network_workload(&net, &random_mask(seed)).expect("wl");
        let full_e = inference_energy(&model, &full_wl, &sys.network_accesses(&full_wl));
        let pruned_e = inference_energy(&model, &pruned_wl, &sys.network_accesses(&pruned_wl));
        for e in [&full_e, &pruned_e] {
            prop_assert!(e.mac_pj >= 0.0 && e.sram_pj >= 0.0 && e.dram_pj >= 0.0);
            let parts = e.mac_pj + e.relu_pj + e.pool_pj + e.sram_pj + e.dram_pj;
            prop_assert!((parts - e.total_pj()).abs() < 1e-9);
        }
        prop_assert!(pruned_e.total_pj() <= full_e.total_pj() + 1e-9);
        prop_assert!(pruned_e.relative_to(&full_e) <= 1.0 + 1e-12);
    }

    #[test]
    fn dataflows_agree_on_dram_and_cycles(seed in any::<u64>()) {
        let net = net();
        let wl = network_workload(&net, &random_mask(seed)).expect("wl");
        let ws = SystolicModel::with_dataflow(
            AcceleratorConfig::tpu_like(),
            Dataflow::WeightStationary,
        )
        .expect("cfg");
        let os = SystolicModel::with_dataflow(
            AcceleratorConfig::tpu_like(),
            Dataflow::OutputStationary,
        )
        .expect("cfg");
        let a = ws.network_accesses(&wl);
        let b = os.network_accesses(&wl);
        // DRAM traffic and cycle count are dataflow-independent in this model
        prop_assert_eq!(a.dram_accesses, b.dram_accesses);
        prop_assert_eq!(a.cycles, b.cycles);
        // both produce some SRAM traffic for a non-empty workload
        prop_assert!(a.sram_accesses > 0 && b.sram_accesses > 0);
    }

    #[test]
    fn cycles_bounded_below_by_compute_and_monotone_in_workload(
        seed in any::<u64>(), pe in prop::sample::select(vec![4usize, 8, 16])
    ) {
        // Bigger arrays do NOT always mean fewer cycles in this model (the
        // fill-latency term grows on underutilized layers) — the invariants
        // are: cycles ≥ the perfect-utilization compute bound, and cycles
        // are monotone in the workload at a fixed configuration.
        let net = net();
        let mut cfg = AcceleratorConfig::tpu_like();
        cfg.pe_rows = pe;
        cfg.pe_cols = pe;
        let model = SystolicModel::new(cfg).expect("cfg");
        let full_wl = network_workload(&net, &PruneMask::all_kept(&net)).expect("wl");
        let pruned_wl = network_workload(&net, &random_mask(seed)).expect("wl");
        let full = model.network_accesses(&full_wl);
        let pruned = model.network_accesses(&pruned_wl);
        let array = (pe * pe) as u64;
        prop_assert!(full.cycles >= full_wl.total().macs / array);
        prop_assert!(pruned.cycles >= pruned_wl.total().macs / array);
        prop_assert!(pruned.cycles <= full.cycles);
    }
}
