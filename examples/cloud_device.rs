//! The full deployment loop of the paper's Fig. 1(a): the device monitors
//! which classes the user actually encounters, the cloud re-personalizes
//! when usage drifts, and the device swaps in the new compact model.
//!
//! ```sh
//! cargo run --release --example cloud_device
//! ```

use capnn_repro::core::{CloudServer, LocalDevice, PruningConfig, UserProfile, Variant};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{NetworkBuilder, Trainer, TrainerConfig, VggConfig};
use capnn_repro::tensor::XorShiftRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut img_cfg = SyntheticImagesConfig::small(8);
    img_cfg.families = 4; // pairs of confusable classes
    let images = SyntheticImages::new(img_cfg)?;
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 42).build()?;
    println!("training an 8-class CNN…");
    let cfg = TrainerConfig {
        epochs: 10,
        ..TrainerConfig::default()
    };
    let report = Trainer::new(cfg, 1).fit(&mut net, images.generate(32, 1).samples())?;
    println!("  train accuracy: {:.1}%", report.final_accuracy() * 100.0);

    let mut prune_cfg = PruningConfig::paper();
    prune_cfg.tail_layers = 4;
    let mut cloud = CloudServer::new(
        net.clone(),
        &images.generate(16, 2),
        &images.generate(8, 3),
        prune_cfg,
    )?;

    // Phase 1: the device ships with the FULL model and a monitoring period.
    let mut device = LocalDevice::deploy(net)?;
    let mut rng = XorShiftRng::new(77);
    println!("\nmonitoring period: user encounters classes 1 (75%) and 4 (25%)…");
    for i in 0..120 {
        let class = if i % 4 == 0 { 4 } else { 1 };
        device.infer(&images.sample(class, &mut rng))?;
    }
    let observed = device.observed_profile(2)?;
    println!("observed profile: {observed}");

    // Phase 2: the cloud personalizes; the device swaps the model in.
    let personalized = cloud.personalize(&observed, Variant::Miseffectual)?;
    println!(
        "cloud shipped a CAP'NN-M model: {:.0}% of the original size",
        personalized.relative_size * 100.0
    );
    let mut device = LocalDevice::deploy(personalized.network)?;
    device.reset_monitor();

    // Phase 3: the user's behaviour drifts to a new class. The pruned model
    // was personalized for other classes, so its *predictions* are no longer
    // trustworthy for profiling — the device only uses them to notice that
    // something changed, then re-runs a monitoring period on the full model
    // (exactly the paper's "dedicated monitoring period").
    println!("\nuser behaviour drifts: now classes 6 (60%) and 1 (40%)…");
    for i in 0..120 {
        let class = if i % 5 < 3 { 6 } else { 1 };
        device.infer(&images.sample(class, &mut rng))?;
    }
    let suspicious = device.observed_profile(2)?;
    println!(
        "pruned model's own predictions now say {suspicious} — off-profile, so \
         the device requests a fresh monitoring period on the full model"
    );
    let mut monitor = LocalDevice::deploy(cloud.network().clone())?;
    for i in 0..120 {
        let class = if i % 5 < 3 { 6 } else { 1 };
        monitor.infer(&images.sample(class, &mut rng))?;
    }
    let drifted = monitor.observed_profile(2)?;
    println!("full-model monitoring finds: {drifted}");
    let refreshed = cloud.personalize(&drifted, Variant::Miseffectual)?;
    println!(
        "re-personalized model: {:.0}% of the original size, classes {:?}",
        refreshed.relative_size * 100.0,
        refreshed.profile.classes()
    );

    // explicit, distinct profiles really produce distinct models
    let other = cloud.personalize(&UserProfile::uniform(vec![0, 5])?, Variant::Weighted)?;
    println!(
        "\n(a different user's model differs: {} vs {} parameters)",
        refreshed.size.total(),
        other.size.total()
    );
    Ok(())
}
