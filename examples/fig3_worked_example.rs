//! The paper's Figure 3 worked example, executed with the real library
//! types: three neurons, three classes, threshold `T = 0.1` and usage
//! weights `(0.8, 0.1, 0.1)`. CAP'NN-B keeps neuron `n1` because its firing
//! rate for class `c2` is above the threshold; CAP'NN-W prunes it because
//! the *effective* firing rate — weighted by how rarely the user sees `c2`
//! — falls below it.
//!
//! ```sh
//! cargo run --release --example fig3_worked_example
//! ```

use capnn_repro::profile::{FiringRates, LayerRates};
use capnn_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rates = LayerRates {
        layer: 0,
        rates: Tensor::from_vec(
            vec![
                0.05, 0.30, 0.02, // n1
                0.50, 0.40, 0.60, // n2
                0.02, 0.03, 0.01, // n3
            ],
            &[3, 3],
        )?,
    };
    let t = 0.1_f32;
    let classes = [0usize, 1, 2];
    let weights = [0.8_f32, 0.1, 0.1];

    println!("Figure 3 worked example (T = {t}, weights = {weights:?})\n");
    println!("neuron | F(c1)  F(c2)  F(c3) | B prunes? | effective | W prunes?");
    println!("----------------------------------------------------------------");
    for n in 0..3 {
        let row: Vec<f32> = (0..3).map(|c| rates.rate(n, c)).collect();
        // CAP'NN-B prunes only if the rate is below T for EVERY class
        let b_prunes = row.iter().all(|&r| r < t);
        let eff = rates.effective_rate(n, &classes, &weights);
        let w_prunes = eff < t;
        println!(
            "n{}     | {:.2}   {:.2}   {:.2} | {:9} | {:9.3} | {}",
            n + 1,
            row[0],
            row[1],
            row[2],
            b_prunes,
            eff,
            w_prunes
        );
    }
    println!();
    println!("n1: kept by CAP'NN-B (fires for c2) but pruned by CAP'NN-W — the");
    println!("    user only sees c2 10% of the time, so its effective rate is");
    println!("    0.8·0.05 + 0.1·0.30 + 0.1·0.02 = 0.072 < 0.1.");

    // the container type the real pipeline would carry
    let _rates = FiringRates::from_layers(vec![rates], 3);
    Ok(())
}
