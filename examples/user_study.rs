//! Fleet study: many simulated users with different class subsets and usage
//! skews, each personalized from one cloud model. Reports the distribution
//! of model sizes and per-user accuracy changes, then exercises the
//! drift-detection loop ([`PersonalizationSession`]) for one user whose
//! interests shift mid-stream.
//!
//! ```sh
//! cargo run --release --example user_study
//! ```

use capnn_repro::core::{
    CloudServer, DriftDecision, DriftPolicy, PersonalizationSession, PruningConfig, UserProfile,
    Variant,
};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{NetworkBuilder, Trainer, TrainerConfig, VggConfig};
use capnn_repro::tensor::XorShiftRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 10usize;
    let images = SyntheticImages::new(SyntheticImagesConfig::small(classes))?;
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(classes), 42).build()?;
    println!("training the shared cloud model…");
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1).fit(&mut net, images.generate(24, 1).samples())?;

    let mut prune_cfg = PruningConfig::paper();
    prune_cfg.tail_layers = 4;
    let mut cloud = CloudServer::new(
        net,
        &images.generate(16, 2),
        &images.generate(8, 3),
        prune_cfg,
    )?;

    // A fleet of users: random subsets, head-heavy usage.
    let mut rng = XorShiftRng::new(0xF1EE7);
    let n_users = 12;
    let mut sizes = Vec::new();
    let mut gains = Vec::new();
    println!("\npersonalizing {n_users} users (CAP'NN-M):");
    for user in 0..n_users {
        let k = 2 + rng.next_below(3); // 2..=4 classes
        let user_classes = rng.sample_combination(classes, k);
        let mut weights = vec![0.6f32];
        weights.extend(std::iter::repeat_n(0.4 / (k - 1) as f32, k - 1));
        let profile = UserProfile::new(user_classes, weights)?;
        let model = cloud.personalize(&profile, Variant::Miseffectual)?;
        let base = cloud.evaluator().topk_accuracy(
            &capnn_repro::nn::PruneMask::all_kept(cloud.network()),
            1,
            Some(model.profile.classes()),
        )?;
        let acc = cloud
            .evaluator()
            .topk_accuracy(&model.mask, 1, Some(model.profile.classes()))?;
        println!(
            "  user {user:2}: {} → {:>5.1}% of model, top-1 {:+.1}%",
            model.profile,
            model.relative_size * 100.0,
            (acc - base) * 100.0
        );
        sizes.push(model.relative_size);
        gains.push(acc - base);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mean32 = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    println!(
        "\nfleet: mean relative size {:.2}, mean top-1 change {:+.1}%, no user below ε",
        mean(&sizes),
        mean32(&gains) * 100.0
    );

    // Drift loop for one user.
    println!("\ndrift study: user 0 shifts from classes {{0,1}} to {{8,9}}");
    let initial = UserProfile::new(vec![0, 1], vec![0.7, 0.3])?;
    let model = cloud.personalize(&initial, Variant::Miseffectual)?;
    let mut session = PersonalizationSession::new(initial, DriftPolicy::conservative())?;
    let mut device = capnn_repro::core::LocalDevice::deploy(model.network)?;
    // phase 1: on-profile traffic — no re-personalization
    for (x, _) in images.usage_stream(&[0, 1], &[0.7, 0.3], 60, &mut rng) {
        let pred = device.infer(&x)?;
        session.record(pred);
    }
    println!("  after on-profile traffic: {:?}", session.check_drift());
    // phase 2: interests shift
    for (x, _) in images.usage_stream(&[8, 9], &[0.5, 0.5], 80, &mut rng) {
        let pred = device.infer(&x)?;
        session.record(pred);
    }
    match session.check_drift() {
        DriftDecision::Repersonalize {
            divergence,
            profile,
        } => {
            println!("  drift detected ({divergence:.2} bit) → re-personalizing for {profile}");
            let refreshed = cloud.personalize(&profile, Variant::Miseffectual)?;
            println!(
                "  new model: {:.0}% of original",
                refreshed.relative_size * 100.0
            );
            session.adopt(profile);
        }
        other => println!("  unexpected decision: {other:?}"),
    }
    Ok(())
}
