//! Side-by-side comparison of every pruning/compression method in the
//! repository on one trained network: the three class-unaware baselines
//! (magnitude, activation-channel, ThiNet-style), low-rank factorization,
//! the CAPTOR-style class-adaptive baseline, and CAP'NN-B/W/M — reporting
//! remaining parameters and accuracy over a 2-class user's classes.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use capnn_repro::baselines::{
    low_rank_compress, magnitude_prune, nonzero_weights, CaptorPruner, ChannelMethod,
    StructuredPruner,
};
use capnn_repro::core::{CapnnB, CapnnM, CapnnW, PruningConfig, TailEvaluator, UserProfile};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{
    evaluate_accuracy, model_size, NetworkBuilder, Trainer, TrainerConfig, VggConfig,
};
use capnn_repro::profile::{ConfusionMatrix, FiringRateProfiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8))?;
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 42).build()?;
    println!("training an 8-class CNN…");
    let cfg = TrainerConfig {
        epochs: 8,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1).fit(&mut net, images.generate(24, 1).samples())?;
    let original_params = net.param_count();

    // cloud-style preprocessing shared by the class-aware methods
    let mut prune_cfg = PruningConfig::paper();
    prune_cfg.tail_layers = 4;
    let profiling = images.generate(16, 2);
    let eval_ds = images.generate(8, 3);
    let rates = FiringRateProfiler::new(prune_cfg.tail_layers).profile(&net, &profiling)?;
    let confusion = ConfusionMatrix::measure(&net, &profiling)?;
    let eval = TailEvaluator::new(&net, &eval_ds, prune_cfg.tail_layers)?;
    let user = UserProfile::new(vec![1, 5], vec![0.8, 0.2])?;
    let user_eval = eval_ds.restrict_to(user.classes());

    println!(
        "\nuser = {user}; original model: {original_params} params, user accuracy {:.1}%\n",
        100.0 * evaluate_accuracy(&net, user_eval.samples())?
    );
    println!(
        "{:<28} {:>10} {:>8} {:>10}",
        "method", "params", "rel.", "user top-1"
    );
    println!("{}", "-".repeat(60));
    let report = |name: &str, params: usize, acc: f32| {
        println!(
            "{:<28} {:>10} {:>7.0}% {:>9.1}%",
            name,
            params,
            100.0 * params as f64 / original_params as f64,
            acc * 100.0
        );
    };

    // class-unaware baselines -------------------------------------------
    let mut magnitude_net = net.clone();
    magnitude_prune(&mut magnitude_net, 0.5)?;
    report(
        "magnitude (50%, unstruct.)",
        nonzero_weights(&magnitude_net),
        evaluate_accuracy(&magnitude_net, user_eval.samples())?,
    );

    for (name, method) in [
        ("activation-channel (20%)", ChannelMethod::Activation),
        ("thinet-style (20%)", ChannelMethod::Reconstruction),
    ] {
        let pruner = StructuredPruner::new(method, 0.2)?;
        let pruned = pruner.prune_and_finetune(
            &net,
            &images.generate(4, 9),
            &images.generate(16, 10),
            2,
            7,
        )?;
        report(
            name,
            pruned.param_count(),
            evaluate_accuracy(&pruned, user_eval.samples())?,
        );
    }

    let (factorized, layers) = low_rank_compress(&net, 0.4)?;
    report(
        &format!("low-rank SVD ({layers} layers)"),
        factorized.param_count(),
        evaluate_accuracy(&factorized, user_eval.samples())?,
    );

    // class-aware methods -------------------------------------------------
    let captor = CaptorPruner::new(prune_cfg)?;
    let mask = captor.prune(&net, &rates, &eval, user.classes())?;
    report(
        "CAPTOR-style (user classes)",
        model_size(&net, &mask)?.total(),
        eval.topk_accuracy(&mask, 1, Some(user.classes()))?,
    );

    let b = CapnnB::new(prune_cfg)?;
    let matrices = b.offline(&net, &rates, &eval)?;
    let mask = CapnnB::online(&net, &matrices, user.classes())?;
    report(
        "CAP'NN-B",
        model_size(&net, &mask)?.total(),
        eval.topk_accuracy(&mask, 1, Some(user.classes()))?,
    );

    let mask = CapnnW::new(prune_cfg)?.prune(&net, &rates, &eval, &user)?;
    report(
        "CAP'NN-W",
        model_size(&net, &mask)?.total(),
        eval.topk_accuracy(&mask, 1, Some(user.classes()))?,
    );

    let mask = CapnnM::new(prune_cfg)?.prune(&net, &rates, &confusion, &eval, &user)?;
    report(
        "CAP'NN-M",
        model_size(&net, &mask)?.total(),
        eval.topk_accuracy(&mask, 1, Some(user.classes()))?,
    );

    println!(
        "\nclass-aware methods exploit what the user WON'T see; class-unaware\n\
         ones must preserve all {} classes and plateau much earlier.",
        net.num_classes()
    );
    Ok(())
}
