//! Energy exploration on the TPU-like accelerator model: how the paper's
//! Table I energy numbers decompose per component, and how CAP'NN-M pruning
//! shifts the breakdown as the user's class count shrinks.
//!
//! ```sh
//! cargo run --release --example energy_explore
//! ```

use capnn_repro::accel::{
    network_energy, network_workload, AcceleratorConfig, EnergyModel, SystolicModel,
};
use capnn_repro::core::{CloudServer, PruningConfig, UserProfile, Variant};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{NetworkBuilder, PruneMask, Trainer, TrainerConfig, VggConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(10))?;
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(10), 42).build()?;
    println!("training a 10-class CNN…");
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1).fit(&mut net, images.generate(24, 1).samples())?;

    let systolic = SystolicModel::new(AcceleratorConfig::tpu_like())?;
    let model = EnergyModel::paper_table1();
    let baseline_wl = network_workload(&net, &PruneMask::all_kept(&net))?;
    let baseline = network_energy(&model, &systolic, &baseline_wl);
    println!("\noriginal model, one inference:");
    println!("  MACs: {}", baseline_wl.total().macs);
    println!(
        "  energy {:.2} µJ = MAC {:.2} + ReLU {:.2} + pool {:.2} + SRAM {:.2} + DRAM {:.2}",
        baseline.total_pj() / 1e6,
        baseline.mac_pj / 1e6,
        baseline.relu_pj / 1e6,
        baseline.pool_pj / 1e6,
        baseline.sram_pj / 1e6,
        baseline.dram_pj / 1e6,
    );

    let mut prune_cfg = PruningConfig::paper();
    prune_cfg.tail_layers = 4;
    let mut cloud = CloudServer::new(
        net.clone(),
        &images.generate(16, 2),
        &images.generate(8, 3),
        prune_cfg,
    )?;

    println!("\nCAP'NN-M energy vs user class count (head-heavy usage):");
    for k in [2usize, 4, 6, 8] {
        let classes: Vec<usize> = (0..k).collect();
        let mut weights = vec![0.5f32];
        weights.extend(std::iter::repeat_n(0.5 / (k - 1) as f32, k - 1));
        let profile = UserProfile::new(classes, weights)?;
        let personalized = cloud.personalize(&profile, Variant::Miseffectual)?;
        let wl = network_workload(&net, &personalized.mask)?;
        let e = network_energy(&model, &systolic, &wl);
        println!(
            "  K = {k}: relative energy {:.2} (size {:.2}, MACs {:.0}%)",
            e.relative_to(&baseline),
            personalized.relative_size,
            100.0 * wl.total().macs as f64 / baseline_wl.total().macs as f64,
        );
    }
    Ok(())
}
