//! Quickstart: train a commodity model, stand up the cloud, personalize for
//! one user with each CAP'NN variant, and compare the shipped models.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use capnn_repro::core::{CloudServer, PruningConfig, UserProfile, Variant};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{NetworkBuilder, Trainer, TrainerConfig, VggConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A trained "commodity" model — the stand-in for VGG-16/ImageNet.
    let images = SyntheticImages::new(SyntheticImagesConfig::small(10))?;
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(10), 42).build()?;
    println!("the commodity model:\n{}", net.summary());
    println!("training a 10-class CNN…");
    let train_cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    let report = Trainer::new(train_cfg, 1).fit(&mut net, images.generate(24, 1).samples())?;
    println!(
        "  final train accuracy: {:.1}%",
        report.final_accuracy() * 100.0
    );

    // 2. Cloud-side offline preprocessing: firing rates + confusion matrix.
    let mut config = PruningConfig::paper();
    config.tail_layers = 4; // vgg_tiny has a shorter prunable tail
    let mut cloud = CloudServer::new(net, &images.generate(16, 2), &images.generate(8, 3), config)?;

    // 3. One user: mostly class 2, sometimes class 7.
    let profile = UserProfile::new(vec![2, 7], vec![0.9, 0.1])?;
    println!("\npersonalizing for {profile}:");
    for variant in [Variant::Basic, Variant::Weighted, Variant::Miseffectual] {
        let model = cloud.personalize(&profile, variant)?;
        let acc = cloud
            .evaluator()
            .topk_accuracy(&model.mask, 1, Some(profile.classes()))?;
        let base = cloud.evaluator().topk_accuracy(
            &capnn_repro::nn::PruneMask::all_kept(cloud.network()),
            1,
            Some(profile.classes()),
        )?;
        println!(
            "  {variant}: {:>6} params ({:.0}% of original), user top-1 {:.1}% (unpruned {:.1}%)",
            model.size.total(),
            model.relative_size * 100.0,
            acc * 100.0,
            base * 100.0,
        );
    }
    println!(
        "\nε guarantee: every variant keeps per-class degradation ≤ {:.0}%",
        config.epsilon * 100.0
    );
    Ok(())
}
