//! Property-based tests for the cross-crate invariants listed in DESIGN.md.
//!
//! A single small MLP rig is trained once (lazily) and shared; proptest then
//! fuzzes profiles, subsets and masks against it.

use capnn_repro::core::{CapnnB, CapnnW, PruningConfig, TailEvaluator, UserProfile};
use capnn_repro::data::{VectorClusters, VectorClustersConfig};
use capnn_repro::nn::{
    model_size, Engine, InferenceRequest, Network, NetworkBuilder, PruneMask, Trainer,
    TrainerConfig,
};
use capnn_repro::profile::{quantize_rates, FiringRateProfiler, FiringRates};
use capnn_repro::tensor::XorShiftRng;
use proptest::prelude::*;
use std::sync::OnceLock;

const CLASSES: usize = 5;

struct SharedRig {
    net: Network,
    rates: FiringRates,
    eval: TailEvaluator,
    matrices: capnn_repro::core::PruningMatrices,
    config: PruningConfig,
}

fn rig() -> &'static SharedRig {
    static RIG: OnceLock<SharedRig> = OnceLock::new();
    RIG.get_or_init(|| {
        let gen = VectorClusters::new(VectorClustersConfig::easy(CLASSES, 6)).expect("gen");
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, CLASSES], 2)
            .build()
            .expect("builds");
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(25, 1).samples())
            .expect("training");
        let config = PruningConfig::fast();
        let rates = FiringRateProfiler::new(config.tail_layers)
            .profile(&net, &gen.generate(15, 2))
            .expect("profiling");
        let eval =
            TailEvaluator::new(&net, &gen.generate(12, 3), config.tail_layers).expect("evaluator");
        let matrices = CapnnB::new(config)
            .expect("config")
            .offline(&net, &rates, &eval)
            .expect("offline");
        SharedRig {
            net,
            rates,
            eval,
            matrices,
            config,
        }
    })
}

/// Strategy: a non-empty distinct class subset of `CLASSES`.
fn class_subset() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..CLASSES, 1..=CLASSES)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Invariant 1 + 3: CAP'NN-B's online intersection keeps every class's
    // degradation below ε for ANY subset, and adding classes never prunes
    // more.
    #[test]
    fn b_online_epsilon_and_monotonicity(classes in class_subset()) {
        let r = rig();
        let mask = CapnnB::online(&r.net, &r.matrices, &classes).expect("online");
        let d = r.eval.max_degradation(&mask, None).expect("degradation");
        prop_assert!(d <= r.config.epsilon + 1e-6, "degradation {} for {:?}", d, classes);

        if classes.len() < CLASSES {
            let mut bigger = classes.clone();
            for c in 0..CLASSES {
                if !bigger.contains(&c) {
                    bigger.push(c);
                    break;
                }
            }
            let mask_big = CapnnB::online(&r.net, &r.matrices, &bigger).expect("online");
            prop_assert!(mask_big.pruned_count() <= mask.pruned_count());
            prop_assert!(mask_big.is_subset_of(&mask));
        }
    }

    // Invariant 1 for CAP'NN-W with arbitrary weighted profiles.
    #[test]
    fn w_epsilon_guarantee_any_profile(classes in class_subset()) {
        let r = rig();
        let mut rng = XorShiftRng::new(classes.iter().sum::<usize>() as u64 + 7);
        let raw: Vec<f32> = (0..classes.len()).map(|_| 0.05 + rng.next_uniform()).collect();
        let sum: f32 = raw.iter().sum();
        let weights: Vec<f32> = raw.into_iter().map(|w| w / sum).collect();
        let profile = UserProfile::new(classes.clone(), weights).expect("profile");
        let mask = CapnnW::new(r.config).expect("config")
            .prune(&r.net, &r.rates, &r.eval, &profile).expect("W");
        let d = r.eval.max_degradation(&mask, Some(&classes)).expect("degradation");
        prop_assert!(d <= r.config.epsilon + 1e-6);
    }

    // Invariant 2: effective firing rate with a one-hot weight vector equals
    // the single class's firing rate.
    #[test]
    fn effective_rate_one_hot_identity(class in 0..CLASSES, unit in 0usize..12) {
        let r = rig();
        let lr = r.rates.layers().last().expect("layers");
        let unit = unit % lr.units();
        let all: Vec<usize> = (0..CLASSES).collect();
        let mut onehot = vec![0.0f32; CLASSES];
        onehot[class] = 1.0;
        let eff = lr.effective_rate(unit, &all, &onehot);
        prop_assert!((eff - lr.rate(unit, class)).abs() < 1e-6);
    }

    // Effective rate is linear: it's bounded by min/max of per-class rates.
    #[test]
    fn effective_rate_within_rate_hull(unit in 0usize..12, seed in any::<u64>()) {
        let r = rig();
        let lr = r.rates.layers().last().expect("layers");
        let unit = unit % lr.units();
        let all: Vec<usize> = (0..CLASSES).collect();
        let mut rng = XorShiftRng::new(seed);
        let raw: Vec<f32> = (0..CLASSES).map(|_| 0.01 + rng.next_uniform()).collect();
        let sum: f32 = raw.iter().sum();
        let weights: Vec<f32> = raw.into_iter().map(|w| w / sum).collect();
        let eff = lr.effective_rate(unit, &all, &weights);
        let rates: Vec<f32> = (0..CLASSES).map(|c| lr.rate(unit, c)).collect();
        let lo = rates.iter().cloned().fold(f32::MAX, f32::min);
        let hi = rates.iter().cloned().fold(f32::MIN, f32::max);
        prop_assert!(eff >= lo - 1e-5 && eff <= hi + 1e-5);
    }

    // Invariant 5: size accounting is monotone and bounded under random
    // pruning.
    #[test]
    fn size_accounting_monotone(pruned in prop::collection::vec((0usize..3, 0usize..12), 0..10)) {
        let r = rig();
        let prunable = r.net.prunable_layers();
        let full = model_size(&r.net, &PruneMask::all_kept(&r.net)).expect("size").total();
        let mut mask = PruneMask::all_kept(&r.net);
        let mut prev = full;
        for (lsel, unit) in pruned {
            let li = prunable[lsel % (prunable.len() - 1)]; // skip output
            let units = r.net.layers()[li].unit_count().unwrap();
            if mask.prune(li, unit % units).is_ok() {
                let now = model_size(&r.net, &mask).expect("size").total();
                prop_assert!(now <= prev);
                prop_assert!(now <= full);
                prev = now;
            }
        }
    }

    // Invariant 4: masked forward equals compacted forward (when no layer is
    // emptied).
    #[test]
    fn compaction_preserves_function(seed in any::<u64>()) {
        let r = rig();
        let mut rng = XorShiftRng::new(seed);
        let prunable = r.net.prunable_layers();
        let mut mask = PruneMask::all_kept(&r.net);
        // prune a random but safe (non-emptying) set in hidden layers
        for &li in &prunable[..prunable.len() - 1] {
            let units = r.net.layers()[li].unit_count().unwrap();
            for u in 0..units {
                if rng.next_uniform() < 0.3 && mask.kept_in_layer(li) > 1 {
                    mask.prune(li, u).expect("prune");
                }
            }
        }
        let compacted = r.net.compact(&mask).expect("compacts");
        let x = capnn_repro::tensor::Tensor::uniform(&[6], -2.0, 2.0, &mut rng);
        let a = r.net.forward_masked_from(0, &x, &mask).expect("masked");
        let b = Engine::new(&compacted)
            .run(InferenceRequest::single(&x))
            .expect("compact")
            .into_single()
            .expect("single output");
        for (&u, &v) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((u - v).abs() < 1e-4, "{} vs {}", u, v);
        }
        // size accounting matches physical compaction
        let predicted = model_size(&r.net, &mask).expect("size").total();
        prop_assert_eq!(predicted, compacted.param_count());
    }

    // Quantization never violates the half-step error bound and preserves
    // the [0, 1] range.
    #[test]
    fn quantization_error_bound(bits in 1u32..9) {
        let r = rig();
        let q = quantize_rates(&r.rates, bits);
        let bound = q.max_error() + 1e-6;
        for (orig, quant) in r.rates.layers().iter().zip(q.rates.layers()) {
            for (&a, &b) in orig.rates.as_slice().iter().zip(quant.rates.as_slice()) {
                prop_assert!((a - b).abs() <= bound);
                prop_assert!((0.0..=1.0).contains(&b));
            }
        }
    }

    // User profiles: constructor accepts exactly the normalized ones.
    #[test]
    fn profile_validation_matches_spec(k in 1usize..5, seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let classes: Vec<usize> = (0..k).collect();
        let raw: Vec<f32> = (0..k).map(|_| 0.05 + rng.next_uniform()).collect();
        let sum: f32 = raw.iter().sum();
        let weights: Vec<f32> = raw.iter().map(|w| w / sum).collect();
        prop_assert!(UserProfile::new(classes.clone(), weights.clone()).is_ok());
        // de-normalize → rejected
        let bad: Vec<f32> = weights.iter().map(|w| w * 1.5).collect();
        prop_assert!(UserProfile::new(classes, bad).is_err());
    }
}
