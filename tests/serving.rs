//! Serving-layer integration tests: the cloud/device protocol end to end,
//! including model serialization (what actually travels over the wire),
//! fleet-level caching, and monitoring-period streams.

use capnn_repro::core::{
    CloudServer, DriftPolicy, LocalDevice, ModelCache, PersonalizationSession, PruningConfig,
    UserProfile, Variant,
};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{
    load_network, network_from_json, network_to_json, save_network, Engine, ExecStrategy,
    InferenceRequest, NetworkBuilder, Trainer, TrainerConfig, VggConfig,
};
use capnn_repro::tensor::XorShiftRng;

fn serving_rig() -> (SyntheticImages, CloudServer) {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8)).expect("config");
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 42)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, images.generate(20, 1).samples())
        .expect("training");
    let mut config = PruningConfig::paper();
    config.tail_layers = 4;
    config.step = 0.05;
    let cloud = CloudServer::new(net, &images.generate(12, 2), &images.generate(8, 3), config)
        .expect("cloud");
    (images, cloud)
}

#[test]
fn personalized_model_survives_the_wire() {
    let (images, mut cloud) = serving_rig();
    let profile = UserProfile::new(vec![1, 5], vec![0.8, 0.2]).expect("profile");
    let model = cloud
        .personalize(&profile, Variant::Miseffectual)
        .expect("personalize");

    // serialize as the cloud would ship it; deserialize device-side
    let wire = network_to_json(&model.network).expect("serialize");
    let received = network_from_json(&wire).expect("deserialize");
    assert_eq!(model.network, received);

    // the received model predicts identically
    let mut rng = XorShiftRng::new(7);
    for _ in 0..10 {
        let x = images.sample(1, &mut rng);
        assert_eq!(
            model.network.predict(&x).expect("predict"),
            received.predict(&x).expect("predict")
        );
    }
}

#[test]
fn model_file_roundtrip_for_device_storage() {
    let (_, mut cloud) = serving_rig();
    let profile = UserProfile::uniform(vec![0, 2]).expect("profile");
    let model = cloud
        .personalize(&profile, Variant::Weighted)
        .expect("personalize");
    let dir = std::env::temp_dir().join("capnn-serving-test");
    let path = dir.join("device-model.json");
    save_network(&model.network, &path).expect("save");
    let loaded = load_network(&path).expect("load");
    assert_eq!(model.network, loaded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_cache_hit_rate_with_overlapping_users() {
    let (_, mut cloud) = serving_rig();
    let mut cache = ModelCache::new(8).expect("cache");
    // 10 users drawn from only 3 distinct (class-set, usage) behaviours
    let behaviours = [
        (vec![0usize, 1], vec![0.75f32, 0.25]),
        (vec![2, 5], vec![0.5, 0.5]),
        (vec![3, 6, 7], vec![0.4, 0.3, 0.3]),
    ];
    for i in 0..10 {
        let (classes, weights) = &behaviours[i % 3];
        let profile = UserProfile::new(classes.clone(), weights.clone()).expect("profile");
        cache
            .personalize(&mut cloud, &profile, Variant::Weighted)
            .expect("personalize");
    }
    assert_eq!(cache.len(), 3);
    assert_eq!(cache.stats().misses, 3);
    assert_eq!(cache.stats().hits, 7);
    assert!(cache.stats().hit_rate() > 0.65);
}

#[test]
fn monitoring_stream_recovers_true_usage_on_accurate_model() {
    let (images, cloud) = serving_rig();
    // monitor with the FULL model (the paper's monitoring period)
    let mut device = LocalDevice::deploy(cloud.network().clone()).expect("deploy");
    let mut rng = XorShiftRng::new(31);
    let stream = images.usage_stream(&[2, 6], &[0.7, 0.3], 150, &mut rng);
    let mut correct = 0usize;
    for (x, truth) in &stream {
        let pred = device.infer(x).expect("infer");
        if pred == *truth {
            correct += 1;
        }
    }
    let acc = correct as f32 / stream.len() as f32;
    assert!(acc > 0.6, "monitoring model too weak: {acc}");
    let observed = device.observed_profile(2).expect("profile");
    // dominant class recovered with roughly the right weight
    assert_eq!(observed.classes()[0], 2);
    assert!(
        (observed.weights()[0] - 0.7).abs() < 0.2,
        "dominant weight {}",
        observed.weights()[0]
    );
}

#[test]
fn certificates_are_auditable() {
    let (_, mut cloud) = serving_rig();
    let profile = UserProfile::new(vec![0, 4], vec![0.6, 0.4]).expect("profile");
    let (model, cert) = cloud
        .personalize_certified(&profile, Variant::Miseffectual)
        .expect("certified personalization");
    // the shipped certificate must hold at the configured ε
    assert!(cert.holds(), "max degradation {}", cert.max_degradation());
    assert_eq!(cert.epsilon, cloud.config().epsilon);
    assert_eq!(cert.classes.len(), profile.k());
    // and a third party can re-verify it from the mask alone
    let replayed = cloud
        .evaluator()
        .certify(
            &model.mask,
            profile.classes(),
            cloud.config().epsilon,
            cloud.config().metric,
        )
        .expect("re-certify");
    assert_eq!(cert, replayed);
}

#[test]
fn plan_served_batched_inference_end_to_end() {
    let (images, mut cloud) = serving_rig();
    let profile = UserProfile::new(vec![2, 6], vec![0.7, 0.3]).expect("profile");
    let model = cloud
        .personalize(&profile, Variant::Weighted)
        .expect("personalize");
    let mut device = LocalDevice::deploy_personalized(&model);
    // the device serves from the exact plan the cloud compiled (shared Arc)
    assert!(std::sync::Arc::ptr_eq(device.plan(), &model.plan));

    let mut rng = XorShiftRng::new(19);
    let stream = images.usage_stream(&[2, 6], &[0.7, 0.3], 32, &mut rng);
    let inputs: Vec<_> = stream.iter().map(|(x, _)| x.clone()).collect();
    let preds = device.infer_batch(&inputs).expect("batch inference");
    assert_eq!(preds.len(), inputs.len());
    assert_eq!(device.observed_total(), inputs.len() as u64);

    // batched predictions agree with the masked reference engine per sample
    let mut engine = Engine::new(cloud.network());
    for (x, &p) in inputs.iter().zip(&preds) {
        let reference = engine
            .run(
                InferenceRequest::single(x)
                    .masked(&model.mask)
                    .strategy(ExecStrategy::Reference),
            )
            .expect("reference")
            .into_single()
            .expect("single output");
        assert_eq!(Some(p), reference.argmax());
    }

    // monitored predictions feed the drift loop in one call
    let mut session =
        PersonalizationSession::new(profile, DriftPolicy::conservative()).expect("session");
    session.record_batch(&preds);
    assert_eq!(session.observations(), preds.len() as u64);
}

#[test]
fn variants_offer_size_accuracy_menu() {
    // The cloud can serve all three variants from one preprocessing pass;
    // B must be the most conservative, M at least as small as W.
    let (_, mut cloud) = serving_rig();
    let profile = UserProfile::new(vec![1, 4], vec![0.9, 0.1]).expect("profile");
    let b = cloud
        .personalize(&profile, Variant::Basic)
        .expect("personalize");
    let w = cloud
        .personalize(&profile, Variant::Weighted)
        .expect("personalize");
    let m = cloud
        .personalize(&profile, Variant::Miseffectual)
        .expect("personalize");
    assert!(w.relative_size <= b.relative_size + 0.02);
    assert!(m.relative_size <= w.relative_size + 0.02);
    for model in [&b, &w, &m] {
        let d = cloud
            .evaluator()
            .max_degradation(&model.mask, Some(profile.classes()))
            .expect("degradation");
        assert!(d <= cloud.config().epsilon + 1e-6, "{}: {d}", model.variant);
    }
}
