//! End-to-end integration tests spanning every crate: train → profile →
//! prune (all three variants) → compact → deploy → infer, with the paper's
//! headline properties checked along the way.

use capnn_repro::core::{
    CapnnB, CapnnM, CapnnW, CloudServer, LocalDevice, PruningConfig, TailEvaluator, UserProfile,
    Variant,
};
use capnn_repro::data::{SyntheticImages, SyntheticImagesConfig};
use capnn_repro::nn::{
    model_size, Engine, InferenceRequest, NetworkBuilder, PruneMask, Trainer, TrainerConfig,
    VggConfig,
};
use capnn_repro::profile::{ConfusionMatrix, FiringRateProfiler};
use capnn_repro::tensor::XorShiftRng;

/// One trained CNN rig shared by the tests in this file (built once).
struct Rig {
    images: SyntheticImages,
    net: capnn_repro::nn::Network,
    rates: capnn_repro::profile::FiringRates,
    confusion: ConfusionMatrix,
    eval: TailEvaluator,
    config: PruningConfig,
}

fn build_rig() -> Rig {
    let images = SyntheticImages::new(SyntheticImagesConfig::small(8)).expect("config");
    let mut net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(8), 42)
        .build()
        .expect("builds");
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, images.generate(20, 1).samples())
        .expect("training");
    let mut config = PruningConfig::paper();
    config.tail_layers = 4;
    config.step = 0.05; // keep the search quick in tests
    let profiling = images.generate(12, 2);
    let rates = FiringRateProfiler::new(config.tail_layers)
        .profile(&net, &profiling)
        .expect("profiling");
    let confusion = ConfusionMatrix::measure(&net, &profiling).expect("confusion");
    let eval =
        TailEvaluator::new(&net, &images.generate(8, 3), config.tail_layers).expect("evaluator");
    Rig {
        images,
        net,
        rates,
        confusion,
        eval,
        config,
    }
}

#[test]
fn full_pipeline_epsilon_guarantee_all_variants() {
    let rig = build_rig();
    let profile = UserProfile::new(vec![0, 4], vec![0.8, 0.2]).expect("profile");

    let b = CapnnB::new(rig.config).expect("config");
    let matrices = b.offline(&rig.net, &rig.rates, &rig.eval).expect("offline");
    let mask_b = CapnnB::online(&rig.net, &matrices, profile.classes()).expect("online");

    let mask_w = CapnnW::new(rig.config)
        .expect("config")
        .prune(&rig.net, &rig.rates, &rig.eval, &profile)
        .expect("W");
    let mask_m = CapnnM::new(rig.config)
        .expect("config")
        .prune(&rig.net, &rig.rates, &rig.confusion, &rig.eval, &profile)
        .expect("M");

    for (name, mask) in [("B", &mask_b), ("W", &mask_w), ("M", &mask_m)] {
        let d = rig
            .eval
            .max_degradation(mask, Some(profile.classes()))
            .expect("degradation");
        assert!(
            d <= rig.config.epsilon + 1e-6,
            "variant {name}: degradation {d} > ε"
        );
    }

    // The paper's size ordering B ≥ W ≥ M holds *on average* (per-instance
    // the ε search can settle differently once rates change), so check it
    // averaged over several skewed profiles with a small tolerance.
    let size = |m: &PruneMask| model_size(&rig.net, m).expect("size").total() as f64;
    let full = size(&PruneMask::all_kept(&rig.net));
    let mut sums = [0.0f64; 3];
    let profiles = [
        UserProfile::new(vec![0, 4], vec![0.8, 0.2]).expect("profile"),
        UserProfile::new(vec![1, 6], vec![0.9, 0.1]).expect("profile"),
        UserProfile::new(vec![2, 3, 7], vec![0.6, 0.3, 0.1]).expect("profile"),
    ];
    let w = CapnnW::new(rig.config).expect("config");
    let m = CapnnM::new(rig.config).expect("config");
    for p in &profiles {
        sums[0] += size(&CapnnB::online(&rig.net, &matrices, p.classes()).expect("online"));
        sums[1] += size(&w.prune(&rig.net, &rig.rates, &rig.eval, p).expect("W"));
        sums[2] += size(
            &m.prune(&rig.net, &rig.rates, &rig.confusion, &rig.eval, p)
                .expect("M"),
        );
    }
    let tol = 0.03 * full * profiles.len() as f64;
    assert!(
        sums[1] <= sums[0] + tol,
        "W avg {} > B avg {}",
        sums[1],
        sums[0]
    );
    assert!(
        sums[2] <= sums[1] + tol,
        "M avg {} > W avg {}",
        sums[2],
        sums[1]
    );
}

#[test]
fn compacted_model_preserves_masked_predictions() {
    let rig = build_rig();
    let profile = UserProfile::new(vec![1, 5], vec![0.7, 0.3]).expect("profile");
    let mask = CapnnW::new(rig.config)
        .expect("config")
        .prune(&rig.net, &rig.rates, &rig.eval, &profile)
        .expect("W");
    let compacted = rig.net.compact(&mask).expect("compacts");
    assert!(compacted.param_count() <= rig.net.param_count());
    let mut rng = XorShiftRng::new(11);
    for &class in profile.classes() {
        for _ in 0..5 {
            let x = rig.images.sample(class, &mut rng);
            let masked_out = rig.net.forward_masked_from(0, &x, &mask).expect("masked");
            let compact_out = Engine::new(&compacted)
                .run(InferenceRequest::single(&x))
                .expect("compact")
                .into_single()
                .expect("single output");
            assert_eq!(
                masked_out.argmax(),
                compact_out.argmax(),
                "prediction changed by compaction"
            );
        }
    }
}

#[test]
fn cloud_device_loop_roundtrip() {
    let rig = build_rig();
    let mut cloud = CloudServer::new(
        rig.net.clone(),
        &rig.images.generate(12, 2),
        &rig.images.generate(8, 3),
        rig.config,
    )
    .expect("cloud");
    let profile = UserProfile::uniform(vec![2, 6]).expect("profile");
    let shipped = cloud
        .personalize(&profile, Variant::Miseffectual)
        .expect("personalize");
    assert!(shipped.relative_size <= 1.0);

    // device runs inference and its monitor recovers the usage pattern
    let mut device = LocalDevice::deploy(shipped.network).expect("deploy");
    let mut rng = XorShiftRng::new(5);
    for i in 0..60 {
        let class = if i % 3 == 0 { 6 } else { 2 };
        device
            .infer(&rig.images.sample(class, &mut rng))
            .expect("infer");
    }
    let observed = device.observed_profile(2).expect("profile");
    assert_eq!(observed.k(), 2);
    // re-personalizing from the observed profile must succeed
    let refreshed = cloud
        .personalize(&observed, Variant::Weighted)
        .expect("re-personalize");
    assert!(refreshed.relative_size <= 1.0);
}

#[test]
fn basic_matrices_support_any_subset_without_reoffline() {
    let rig = build_rig();
    let b = CapnnB::new(rig.config).expect("config");
    let matrices = b.offline(&rig.net, &rig.rates, &rig.eval).expect("offline");
    let mut rng = XorShiftRng::new(123);
    for k in [1usize, 2, 3, 5] {
        let classes = rng.sample_combination(8, k);
        let mask = CapnnB::online(&rig.net, &matrices, &classes).expect("online");
        let d = rig.eval.max_degradation(&mask, None).expect("degradation");
        assert!(
            d <= rig.config.epsilon + 1e-6,
            "K = {k}: degradation {d} over ALL classes (B's stronger guarantee)"
        );
    }
}

#[test]
fn miseffectual_pruning_helps_confused_pairs() {
    // Aggregate check over several confused family pairs: CAP'NN-M's user
    // top-1 should on average be at least as good as CAP'NN-W's, because the
    // only difference is removing units that pull toward confusers.
    let rig = build_rig();
    let w = CapnnW::new(rig.config).expect("config");
    let m = CapnnM::new(rig.config).expect("config");
    let mut w_sum = 0.0f32;
    let mut m_sum = 0.0f32;
    let mut pairs = 0usize;
    for class in 0..4usize {
        let confusable = rig.images.confusable_with(class);
        let Some(&other) = confusable.first() else {
            continue;
        };
        let profile = UserProfile::new(vec![class, other], vec![0.5, 0.5]).expect("profile");
        let mask_w = w
            .prune(&rig.net, &rig.rates, &rig.eval, &profile)
            .expect("W");
        let mask_m = m
            .prune(&rig.net, &rig.rates, &rig.confusion, &rig.eval, &profile)
            .expect("M");
        w_sum += rig
            .eval
            .topk_accuracy(&mask_w, 1, Some(profile.classes()))
            .expect("acc");
        m_sum += rig
            .eval
            .topk_accuracy(&mask_m, 1, Some(profile.classes()))
            .expect("acc");
        pairs += 1;
    }
    assert!(pairs > 0);
    assert!(
        m_sum >= w_sum - 0.05 * pairs as f32,
        "CAP'NN-M markedly worse than W across confused pairs: {m_sum} vs {w_sum}"
    );
}

#[test]
fn energy_stack_tracks_pruning() {
    use capnn_repro::accel::{
        network_energy, network_workload, AcceleratorConfig, EnergyModel, SystolicModel,
    };
    let rig = build_rig();
    let profile = UserProfile::new(vec![0, 3], vec![0.9, 0.1]).expect("profile");
    let mask = CapnnM::new(rig.config)
        .expect("config")
        .prune(&rig.net, &rig.rates, &rig.confusion, &rig.eval, &profile)
        .expect("M");
    let systolic = SystolicModel::new(AcceleratorConfig::tpu_like()).expect("config");
    let model = EnergyModel::paper_table1();
    let full = network_energy(
        &model,
        &systolic,
        &network_workload(&rig.net, &PruneMask::all_kept(&rig.net)).expect("wl"),
    );
    let pruned = network_energy(
        &model,
        &systolic,
        &network_workload(&rig.net, &mask).expect("wl"),
    );
    let rel_energy = pruned.relative_to(&full);
    let rel_size = model_size(&rig.net, &mask).expect("size").total() as f64
        / model_size(&rig.net, &PruneMask::all_kept(&rig.net))
            .expect("size")
            .total() as f64;
    assert!(rel_energy <= 1.0);
    // pruning weights must translate into energy savings of the same order
    assert!(
        rel_energy <= rel_size + 0.35,
        "energy {rel_energy} wildly above size {rel_size}"
    );
}

#[test]
fn capnn_prunes_conv_channels_not_only_neurons() {
    // The paper prunes channels in conv layers and neurons in FC layers;
    // verify the masks CAP'NN-W produces on the CNN rig actually touch both.
    let rig = build_rig();
    let profile = UserProfile::new(vec![0, 2], vec![0.9, 0.1]).expect("profile");
    let mask = CapnnW::new(rig.config)
        .expect("config")
        .prune(&rig.net, &rig.rates, &rig.eval, &profile)
        .expect("W");
    let mut conv_pruned = 0usize;
    let mut dense_pruned = 0usize;
    for (i, layer) in rig.net.layers().iter().enumerate() {
        let Some(units) = layer.unit_count() else {
            continue;
        };
        let pruned = units - mask.kept_in_layer(i);
        match layer.kind() {
            "conv" => conv_pruned += pruned,
            "dense" => dense_pruned += pruned,
            _ => {}
        }
    }
    assert!(conv_pruned > 0, "no conv channels pruned");
    assert!(dense_pruned > 0, "no dense neurons pruned");
}

#[test]
fn model_cache_dedups_equivalent_users() {
    use capnn_repro::core::ModelCache;
    let rig = build_rig();
    let mut cloud = CloudServer::new(
        rig.net.clone(),
        &rig.images.generate(12, 2),
        &rig.images.generate(8, 3),
        rig.config,
    )
    .expect("cloud");
    let mut cache = ModelCache::new(16).expect("cache");
    let a = UserProfile::new(vec![0, 3], vec![0.8, 0.2]).expect("profile");
    // same classes, reordered, near-identical usage → must share a model
    let b = UserProfile::new(vec![3, 0], vec![0.21, 0.79]).expect("profile");
    let m1 = cache
        .personalize(&mut cloud, &a, Variant::Weighted)
        .expect("personalize");
    let m2 = cache
        .personalize(&mut cloud, &b, Variant::Weighted)
        .expect("personalize");
    assert_eq!(m1.mask, m2.mask);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.len(), 1);

    // a genuinely different user gets a different pipeline run
    let c = UserProfile::new(vec![1, 6], vec![0.5, 0.5]).expect("profile");
    cache
        .personalize(&mut cloud, &c, Variant::Weighted)
        .expect("personalize");
    assert_eq!(cache.stats().misses, 2);
    cache.invalidate();
    assert!(cache.is_empty());
}

#[test]
fn low_rank_baseline_composes_with_capnn() {
    use capnn_repro::baselines::low_rank_compress;
    let rig = build_rig();
    let (compressed, factorized) = low_rank_compress(&rig.net, 0.5).expect("compress");
    assert!(
        factorized > 0,
        "expected at least one factorized dense layer"
    );
    assert!(compressed.param_count() < rig.net.param_count());
    // the compressed model still classifies sensibly enough to re-profile
    let profiling = rig.images.generate(12, 2);
    let rates = FiringRateProfiler::new(rig.config.tail_layers)
        .profile(&compressed, &profiling)
        .expect("profiling the factorized model");
    let eval = TailEvaluator::new(
        &compressed,
        &rig.images.generate(8, 3),
        rig.config.tail_layers,
    )
    .expect("evaluator");
    let profile = UserProfile::new(vec![0, 1], vec![0.7, 0.3]).expect("profile");
    let mask = CapnnW::new(rig.config)
        .expect("config")
        .prune(&compressed, &rates, &eval, &profile)
        .expect("CAP'NN-W on the factorized model");
    let d = eval
        .max_degradation(&mask, Some(profile.classes()))
        .expect("degradation");
    assert!(d <= rig.config.epsilon + 1e-6);
}

#[test]
fn drift_session_round_trip_with_cloud() {
    use capnn_repro::core::{DriftDecision, DriftPolicy, PersonalizationSession};
    let rig = build_rig();
    let mut cloud = CloudServer::new(
        rig.net.clone(),
        &rig.images.generate(12, 2),
        &rig.images.generate(8, 3),
        rig.config,
    )
    .expect("cloud");
    let initial = UserProfile::new(vec![0, 1], vec![0.7, 0.3]).expect("profile");
    let model = cloud
        .personalize(&initial, Variant::Weighted)
        .expect("personalize");
    let policy = DriftPolicy::builder()
        .divergence_threshold(0.2)
        .min_observations(30)
        .profile_k(2)
        .build()
        .expect("policy");
    let mut session = PersonalizationSession::new(initial, policy).expect("session");
    let mut device = LocalDevice::deploy(model.network).expect("deploy");
    let mut rng = XorShiftRng::new(21);
    // traffic shifts entirely to classes {5, 6}
    for (x, _) in rig.images.usage_stream(&[5, 6], &[0.5, 0.5], 60, &mut rng) {
        let pred = device.infer(&x).expect("infer");
        session.record(pred);
    }
    match session.check_drift() {
        DriftDecision::Repersonalize { profile, .. } => {
            let refreshed = cloud
                .personalize(&profile, Variant::Weighted)
                .expect("re-personalize");
            assert!(refreshed.relative_size <= 1.0);
            session.adopt(profile);
            assert_eq!(session.observations(), 0);
        }
        other => panic!("expected drift, got {other:?}"),
    }
}

#[test]
fn baselines_compose_with_capnn() {
    use capnn_repro::baselines::{ChannelMethod, StructuredPruner};
    let rig = build_rig();
    let pruner = StructuredPruner::new(ChannelMethod::Activation, 0.1).expect("fraction");
    let calibration = rig.images.generate(3, 9);
    let train = rig.images.generate(12, 10);
    let pruned_net = pruner
        .prune_and_finetune(&rig.net, &calibration, &train, 2, 7)
        .expect("baseline");
    assert!(pruned_net.param_count() < rig.net.param_count());

    // CAP'NN-M on top of the class-unaware pruned model
    let profiling = rig.images.generate(12, 2);
    let rates = FiringRateProfiler::new(rig.config.tail_layers)
        .profile(&pruned_net, &profiling)
        .expect("profiling");
    let confusion = ConfusionMatrix::measure(&pruned_net, &profiling).expect("confusion");
    let eval = TailEvaluator::new(
        &pruned_net,
        &rig.images.generate(8, 3),
        rig.config.tail_layers,
    )
    .expect("evaluator");
    let profile = UserProfile::uniform(vec![0, 1]).expect("profile");
    let mask = CapnnM::new(rig.config)
        .expect("config")
        .prune(&pruned_net, &rates, &confusion, &eval, &profile)
        .expect("stacked M");
    let stacked_size = model_size(&pruned_net, &mask).expect("size").total();
    assert!(stacked_size < pruned_net.param_count());
}
